//! Property-based tests for the fault-injection engine.

use ena_faults::degrade::DegradedNode;
use ena_faults::plan::{FaultKind, FaultPlan};
use ena_faults::{run_campaign, CampaignSpec};
use ena_model::config::EhpConfig;
use ena_testkit::prelude::*;

/// Any single chiplet (GPU or CPU) on the ring package.
fn arbitrary_chiplet() -> impl Strategy<Value = FaultKind> {
    (0u32..16).prop_map(|i| {
        if i < 8 {
            FaultKind::GpuChiplet(i)
        } else {
            FaultKind::CpuChiplet(i - 8)
        }
    })
}

proptest! {
    #[test]
    fn single_chiplet_loss_keeps_survivors_mutually_reachable(
        kind in arbitrary_chiplet(),
    ) {
        let base = EhpConfig::paper_baseline();
        let mut node = DegradedNode::new(&base);
        let mut plan = FaultPlan::new(0);
        plan.push(10.0, kind);
        for &event in plan.events() {
            node.apply(event).expect("single chiplet loss is survivable");
        }
        let topo = node.topology();
        let survivors = topo.endpoints(|_| true);
        prop_assert!(!survivors.is_empty());
        for &a in &survivors {
            for &b in &survivors {
                if a != b {
                    prop_assert!(
                        topo.route(a, b).is_ok(),
                        "survivors {} and {} unreachable after {}",
                        a, b, kind
                    );
                }
            }
        }
    }

    #[test]
    fn single_ring_cut_never_strands_traffic(segment in 0u32..6) {
        let base = EhpConfig::paper_baseline();
        let mut node = DegradedNode::new(&base);
        let mut plan = FaultPlan::new(0);
        plan.push(5.0, FaultKind::InterposerLink(segment));
        for &event in plan.events() {
            let collateral = node.apply(event).expect("one cut ring stays connected");
            prop_assert!(collateral.is_empty());
        }
        let topo = node.topology();
        let survivors = topo.endpoints(|_| true);
        for &a in &survivors {
            for &b in &survivors {
                if a != b {
                    prop_assert!(topo.route(a, b).is_ok());
                }
            }
        }
    }

}

proptest! {
    // Full campaigns run the node models and two Monte Carlo availability
    // sweeps each; a handful of sampled seeds keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_standard_campaign_seed_completes_and_degrades(
        seed in 0u64..1000,
    ) {
        let report = run_campaign(&CampaignSpec::standard(seed))
            .expect("the standard campaign is always survivable");
        let last = report.final_snapshot();
        prop_assert!(last.gflops > 0.0);
        prop_assert!(last.gflops < report.healthy.gflops);
        prop_assert!(last.gpu_chiplets >= 1);
        prop_assert!(last.cpu_chiplets >= 1);
        prop_assert!(report.degraded_makespan_us >= report.healthy_makespan_us);
    }
}

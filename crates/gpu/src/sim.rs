//! The wavefront-level timing simulator.
//!
//! Models one or more compute units, each multiplexing a set of wavefront
//! contexts over its SIMD issue slots. Wavefronts hide memory latency by
//! switching: while one waits on outstanding requests, others issue. This
//! is the mechanism behind the paper's Finding that "the GPU's massive
//! parallelism is effective at latency hiding" (Section V-A), and the
//! cycle-level complement to the analytic model's `parallelism` /
//! `latency_sensitivity` parameters.

use crate::backend::MemoryBackend;
use crate::program::{Op, WavefrontProgram};

/// Configuration of one simulated compute unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CuConfig {
    /// Ops issued per cycle across ready wavefronts (SIMD scheduler width).
    pub issue_width: u32,
    /// Maximum in-flight memory requests per wavefront.
    pub max_outstanding: u32,
    /// Shared compute pipelines: a `Compute` op occupies one for its full
    /// duration. One pipe at 64 FLOPs/cycle models a whole CU's vector
    /// throughput.
    pub compute_pipes: u32,
}

impl Default for CuConfig {
    fn default() -> Self {
        Self {
            issue_width: 4,
            max_outstanding: 8,
            compute_pipes: 1,
        }
    }
}

/// One wavefront's execution state.
#[derive(Clone, Debug)]
struct WavefrontState {
    program: WavefrontProgram,
    pc: usize,
    /// The SIMD is occupied by this wavefront's compute until this cycle.
    busy_until: u64,
    /// Completion cycles of in-flight requests (unsorted).
    outstanding: Vec<u64>,
    flops: u64,
}

impl WavefrontState {
    fn new(program: WavefrontProgram) -> Self {
        Self {
            program,
            pc: 0,
            busy_until: 0,
            outstanding: Vec::new(),
            flops: 0,
        }
    }

    fn done(&self) -> bool {
        self.pc >= self.program.ops().len()
    }

    fn drain(&mut self, now: u64) {
        self.outstanding.retain(|&c| c > now);
    }

    /// The earliest cycle at which this wavefront could make progress, or
    /// `None` if it is finished.
    fn next_event(&self, now: u64, cfg: &CuConfig) -> Option<u64> {
        if self.done() {
            return None;
        }
        let mut earliest = self.busy_until.max(now);
        match self.program.ops()[self.pc] {
            Op::Wait { max_outstanding } => {
                if self.outstanding.len() > max_outstanding as usize {
                    // Must wait for enough completions.
                    let mut c: Vec<u64> = self.outstanding.clone();
                    c.sort_unstable();
                    let need = self.outstanding.len() - max_outstanding as usize;
                    earliest = earliest.max(c[need - 1]);
                }
            }
            Op::Load { .. } | Op::Store { .. } => {
                if self.outstanding.len() >= cfg.max_outstanding as usize {
                    if let Some(&min) = self.outstanding.iter().min() {
                        earliest = earliest.max(min);
                    }
                }
            }
            Op::Compute { .. } => {}
        }
        Some(earliest)
    }
}

/// Aggregate results of a timing simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimingStats {
    /// Total cycles until the last wavefront finished.
    pub cycles: u64,
    /// DP FLOPs retired.
    pub flops: u64,
    /// Memory requests issued.
    pub requests: u64,
    /// Issue slots actually used.
    pub issued_ops: u64,
    /// Issue slots available (`cycles x issue_width x CUs`).
    pub issue_slots: u64,
}

impl TimingStats {
    /// Achieved FLOPs per cycle.
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.flops as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue slots used.
    pub fn issue_utilization(&self) -> f64 {
        if self.issue_slots == 0 {
            0.0
        } else {
            self.issued_ops as f64 / self.issue_slots as f64
        }
    }
}

/// The timing simulator for one CU cluster sharing a memory backend.
pub struct GpuSim<'a, B: MemoryBackend> {
    config: CuConfig,
    backend: &'a mut B,
}

impl<'a, B: MemoryBackend> GpuSim<'a, B> {
    /// Creates a simulator over `backend`.
    pub fn new(config: CuConfig, backend: &'a mut B) -> Self {
        Self { config, backend }
    }

    /// Runs the given wavefronts to completion, returning timing stats.
    ///
    /// # Panics
    ///
    /// Panics if `wavefronts` is empty.
    pub fn run(&mut self, wavefronts: Vec<WavefrontProgram>) -> TimingStats {
        assert!(!wavefronts.is_empty(), "no wavefronts to run");
        let mut waves: Vec<WavefrontState> =
            wavefronts.into_iter().map(WavefrontState::new).collect();
        let mut now = 0u64;
        let mut stats = TimingStats::default();
        let mut rr = 0usize; // round-robin pointer
        let mut pipe_free = vec![0u64; self.config.compute_pipes.max(1) as usize];

        while waves.iter().any(|w| !w.done()) {
            for w in waves.iter_mut() {
                w.drain(now);
            }

            // Issue up to issue_width ops this cycle, round-robin.
            let mut issued = 0u32;
            let n = waves.len();
            for k in 0..n {
                if issued >= self.config.issue_width {
                    break;
                }
                let idx = (rr + k) % n;
                let cfg = self.config;
                let w = &mut waves[idx];
                if w.done() || w.busy_until > now {
                    continue;
                }
                match w.program.ops()[w.pc] {
                    Op::Compute { cycles, flops } => {
                        // Needs a free shared compute pipe.
                        let Some(pipe) = pipe_free.iter_mut().find(|f| **f <= now) else {
                            continue;
                        };
                        *pipe = now + u64::from(cycles);
                        w.busy_until = now + u64::from(cycles);
                        w.flops += u64::from(flops);
                        stats.flops += u64::from(flops);
                        w.pc += 1;
                        issued += 1;
                    }
                    Op::Load { addr } | Op::Store { addr }
                        if w.outstanding.len() < cfg.max_outstanding as usize =>
                    {
                        let is_write = matches!(w.program.ops()[w.pc], Op::Store { .. });
                        let complete = self.backend.request(addr, is_write, now);
                        w.outstanding.push(complete);
                        stats.requests += 1;
                        w.pc += 1;
                        issued += 1;
                    }
                    Op::Wait { max_outstanding }
                        if w.outstanding.len() <= max_outstanding as usize =>
                    {
                        // Waits retire for free once satisfied.
                        w.pc += 1;
                    }
                    _ => {}
                }
            }
            rr = (rr + 1) % n;
            stats.issued_ops += u64::from(issued);

            // Advance time: next cycle, or jump to the next event if the
            // machine is fully stalled.
            if issued == 0 {
                let next = waves
                    .iter()
                    .filter_map(|w| w.next_event(now + 1, &self.config))
                    .min()
                    .map(|e| {
                        // A compute-ready wavefront may be gated on a pipe.
                        let pipe = pipe_free.iter().copied().min().unwrap_or(0);
                        if e <= now + 1 && pipe > now {
                            e.max(pipe)
                        } else {
                            e
                        }
                    });
                now = next.unwrap_or(now + 1).max(now + 1);
            } else {
                now += 1;
            }
        }

        // The makespan runs to the last completion, not the last issue:
        // in-flight compute and memory must drain.
        let drain = waves
            .iter()
            .map(|w| {
                w.busy_until
                    .max(w.outstanding.iter().copied().max().unwrap_or(0))
            })
            .max()
            .unwrap_or(0);
        stats.cycles = now.max(drain).max(1);
        stats.issue_slots = stats.cycles * u64::from(self.config.issue_width);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FixedLatency;

    fn compute_only(iters: u32) -> WavefrontProgram {
        (0..iters)
            .map(|_| Op::Compute {
                cycles: 1,
                flops: 64,
            })
            .collect()
    }

    fn streaming(iters: u32, mlp: u32) -> WavefrontProgram {
        let mut p = WavefrontProgram::new();
        for i in 0..iters {
            for j in 0..mlp {
                p = p.push(Op::Load {
                    addr: u64::from(i * mlp + j) * 64,
                });
            }
            p = p.push(Op::Wait { max_outstanding: 0 });
            p = p.push(Op::Compute {
                cycles: 1,
                flops: 64,
            });
        }
        p
    }

    #[test]
    fn compute_bound_wavefronts_saturate_the_pipes() {
        let mut mem = FixedLatency::new(100, 1);
        let cfg = CuConfig {
            compute_pipes: 4,
            ..CuConfig::default()
        };
        let mut sim = GpuSim::new(cfg, &mut mem);
        let stats = sim.run(vec![compute_only(100); 8]);
        // 8 wavefronts x 100 ops / 4 pipes = 200 cycles minimum.
        assert!(stats.cycles >= 200);
        assert!(stats.cycles < 230, "cycles = {}", stats.cycles);
        assert!(stats.issue_utilization() > 0.85);
        assert_eq!(stats.flops, 8 * 100 * 64);
    }

    #[test]
    fn a_single_pipe_serializes_compute() {
        let mut mem = FixedLatency::new(100, 1);
        let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
        let stats = sim.run(vec![compute_only(100); 8]);
        // One shared pipe: 800 one-cycle compute ops serialize.
        assert!(stats.cycles >= 800, "cycles = {}", stats.cycles);
        // The pipe itself stays fully busy: 64 FLOPs every cycle.
        assert!(stats.flops_per_cycle() > 60.0);
    }

    #[test]
    fn a_single_memory_wavefront_is_latency_bound() {
        let mut mem = FixedLatency::new(200, 1);
        let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
        let stats = sim.run(vec![streaming(20, 1)]);
        // Each iteration serializes one 200-cycle round trip.
        assert!(stats.cycles >= 20 * 200, "cycles = {}", stats.cycles);
        assert!(stats.issue_utilization() < 0.05);
    }

    #[test]
    fn more_wavefronts_hide_memory_latency() {
        let run = |count: usize| {
            let mut mem = FixedLatency::new(200, 2);
            let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
            sim.run(vec![streaming(20, 4); count]).flops_per_cycle()
        };
        let one = run(1);
        let eight = run(8);
        let sixteen = run(16);
        assert!(eight > 3.0 * one, "1: {one}, 8: {eight}");
        assert!(sixteen >= eight * 0.95, "8: {eight}, 16: {sixteen}");
    }

    #[test]
    fn bandwidth_limits_cap_wavefront_scaling() {
        // With a 4-cycle service interval the pipe sustains 0.25 req/cycle;
        // piling on wavefronts cannot exceed it.
        let run = |count: usize| {
            let mut mem = FixedLatency::new(100, 4);
            let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
            let s = sim.run(vec![streaming(50, 4); count]);
            s.requests as f64 / s.cycles as f64
        };
        let heavy = run(32);
        assert!(heavy <= 0.26, "requests/cycle = {heavy}");
    }

    #[test]
    fn mlp_improves_latency_bound_throughput() {
        let run = |mlp: u32| {
            let mut mem = FixedLatency::new(200, 1);
            let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
            // Same total loads regardless of mlp.
            sim.run(vec![streaming(24 / mlp, mlp); 2]).cycles
        };
        assert!(run(4) < run(1), "mlp 4: {}, mlp 1: {}", run(4), run(1));
    }

    #[test]
    fn stats_are_internally_consistent() {
        let mut mem = FixedLatency::new(50, 2);
        let mut sim = GpuSim::new(CuConfig::default(), &mut mem);
        let wf = streaming(10, 2);
        let expect_flops = wf.total_flops() * 3;
        let expect_reqs = wf.total_requests() * 3;
        let stats = sim.run(vec![wf; 3]);
        assert_eq!(stats.flops, expect_flops);
        assert_eq!(stats.requests, expect_reqs);
        assert!(stats.issued_ops <= stats.issue_slots);
    }
}

//! Cycle-approximate GPU wavefront timing simulation for the ENA toolkit.
//!
//! The paper adjusts its high-level model with cycle-level (gem5-APU)
//! simulation to account for microarchitectural effects (Section III).
//! This crate is that substrate: a wavefront-level timing model in which
//! compute units multiplex wavefront contexts over SIMD issue slots and
//! hide memory latency by switching — making the analytic model's
//! `parallelism` and `latency_sensitivity` parameters *mechanistic* rather
//! than assumed.
//!
//! - [`program`] — wavefront instruction streams.
//! - [`backend`] — memory backends: a fixed-latency pipe and the detailed
//!   banked-HBM backend built on `ena-memory`.
//! - [`sim`] — the CU scheduler and timing loop.
//! - [`synth`] — synthesizing wavefront sets from kernel profiles.
//!
//! # Example: latency hiding in action
//!
//! ```
//! use ena_gpu::backend::FixedLatency;
//! use ena_gpu::program::{Op, WavefrontProgram};
//! use ena_gpu::sim::{CuConfig, GpuSim};
//!
//! let streaming: WavefrontProgram = (0..32)
//!     .flat_map(|i| [Op::Load { addr: i * 64 }, Op::Wait { max_outstanding: 0 },
//!                    Op::Compute { cycles: 1, flops: 64 }])
//!     .collect();
//!
//! let run = |wavefronts: usize| {
//!     let mut memory = FixedLatency::new(200, 2);
//!     GpuSim::new(CuConfig::default(), &mut memory)
//!         .run(vec![streaming.clone(); wavefronts])
//!         .flops_per_cycle()
//! };
//! assert!(run(8) > 3.0 * run(1)); // more wavefronts hide the latency
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod program;
pub mod sim;
pub mod synth;

pub use backend::{FixedLatency, HbmBackend, MemoryBackend};
pub use program::{Op, WavefrontProgram};
pub use sim::{CuConfig, GpuSim, TimingStats};

//! Synthesizing wavefront programs from kernel profiles.
//!
//! Bridges the analytic and cycle-level views: a
//! [`ena_model::KernelProfile`]'s arithmetic intensity,
//! parallelism, and access regularity become a concrete set of wavefront
//! programs whose timing-simulated behaviour can be compared against the
//! analytic model's predictions (the validation experiment in
//! `ena-bench`).

use ena_model::kernel::KernelProfile;

use crate::program::{Op, WavefrontProgram};

/// DP FLOPs a wavefront retires per issue cycle (64 lanes).
pub const FLOPS_PER_ISSUE: u32 = 64;

/// A deterministic address-stream generator mixing strided and random
/// accesses.
#[derive(Clone, Copy, Debug)]
struct AddressGen {
    state: u64,
    cursor: u64,
    /// Probability of continuing the sequential stream.
    sequential: f64,
}

impl AddressGen {
    fn new(seed: u64, sequential: f64) -> Self {
        Self {
            state: seed | 1,
            cursor: (seed % 1024) * 4096,
            sequential: sequential.clamp(0.0, 1.0),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        if unit < self.sequential {
            self.cursor += 64;
        } else {
            self.cursor = (self.state >> 17) % (1 << 30);
            self.cursor -= self.cursor % 64;
        }
        self.cursor
    }
}

/// Builds the wavefront set for `profile` on one CU.
///
/// - Wavefront count scales with `parallelism` (1..=16): the knob behind
///   latency hiding.
/// - Per iteration, a wavefront issues a burst of loads sized by the
///   profile's memory-level parallelism, waits, then computes enough
///   cycles to honor the profile's ops-per-byte.
/// - Address streams mix strided and random accesses; irregular
///   (latency-sensitive) kernels get more randomness.
pub fn wavefronts_for(
    profile: &KernelProfile,
    iterations: u32,
    seed: u64,
) -> Vec<WavefrontProgram> {
    let count = (1.0 + profile.parallelism * 15.0).round() as usize;
    let mlp = (1.0 + profile.parallelism * 7.0).round() as u32;
    // Bytes per iteration: mlp lines.
    let bytes = mlp * 64;
    let flops = (profile.ops_per_byte * f64::from(bytes)).round().max(0.0) as u64;
    let sequential = 1.0 - profile.latency_sensitivity;

    (0..count)
        .map(|w| {
            let mut gen = AddressGen::new(seed ^ ((w as u64) << 32), sequential);
            let mut p = WavefrontProgram::new();
            for _ in 0..iterations {
                for _ in 0..mlp {
                    let addr = gen.next();
                    if (gen.state >> 7) as f64 / (1u64 << 57) as f64 * 0.5 < profile.write_fraction
                    {
                        p = p.push(Op::Store { addr });
                    } else {
                        p = p.push(Op::Load { addr });
                    }
                }
                p = p.push(Op::Wait {
                    max_outstanding: mlp / 2,
                });
                let mut remaining = flops;
                while remaining > 0 {
                    let chunk = remaining.min(u64::from(FLOPS_PER_ISSUE) * 16) as u32;
                    p = p.push(Op::Compute {
                        cycles: chunk.div_ceil(FLOPS_PER_ISSUE),
                        flops: chunk,
                    });
                    remaining -= u64::from(chunk);
                }
            }
            p
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ena_model::kernel::KernelCategory;

    fn profile(opb: f64, par: f64, lat: f64) -> KernelProfile {
        KernelProfile {
            name: "synthetic".into(),
            category: KernelCategory::Balanced,
            ops_per_byte: opb,
            utilization: 0.6,
            parallelism: par,
            latency_sensitivity: lat,
            contention_sensitivity: 0.2,
            write_fraction: 0.2,
            ext_traffic_fraction: 0.5,
            out_of_chiplet_fraction: 0.8,
            serial_fraction: 0.01,
        }
    }

    #[test]
    fn intensity_carries_into_the_programs() {
        let wf = wavefronts_for(&profile(4.0, 0.8, 0.2), 10, 7);
        let flops: u64 = wf.iter().map(|p| p.total_flops()).sum();
        let bytes: u64 = wf.iter().map(|p| p.total_requests() * 64).sum();
        let measured = flops as f64 / bytes as f64;
        assert!((measured - 4.0).abs() < 0.5, "intensity {measured}");
    }

    #[test]
    fn parallelism_scales_wavefront_count() {
        assert!(
            wavefronts_for(&profile(2.0, 1.0, 0.2), 4, 1).len()
                > 2 * wavefronts_for(&profile(2.0, 0.2, 0.2), 4, 1).len()
        );
    }

    #[test]
    fn irregular_profiles_generate_scattered_addresses() {
        let collect = |lat: f64| {
            let wf = wavefronts_for(&profile(1.0, 0.5, lat), 32, 3);
            let mut seq = 0u32;
            let mut total = 0u32;
            let mut last = None;
            for op in wf[0].ops() {
                if let Op::Load { addr } | Op::Store { addr } = *op {
                    if let Some(prev) = last {
                        total += 1;
                        if addr == prev + 64 {
                            seq += 1;
                        }
                    }
                    last = Some(addr);
                }
            }
            f64::from(seq) / f64::from(total.max(1))
        };
        assert!(collect(0.9) < collect(0.1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = wavefronts_for(&profile(2.0, 0.7, 0.3), 8, 42);
        let b = wavefronts_for(&profile(2.0, 0.7, 0.3), 8, 42);
        assert_eq!(a, b);
    }
}

//! Memory backends the timing model issues requests into.

use ena_memory::hbm::{Direction, HbmStack};
use ena_memory::interleave::AddressMap;

/// Something that services line-granular memory requests with timing.
pub trait MemoryBackend {
    /// Issues a request at `cycle`, returning its completion cycle.
    fn request(&mut self, addr: u64, is_write: bool, cycle: u64) -> u64;
}

/// A fixed-latency, bandwidth-limited pipe: the simplest backend, useful
/// for isolating CU-side behaviour.
#[derive(Clone, Debug)]
pub struct FixedLatency {
    /// Request latency in cycles.
    pub latency: u64,
    /// Cycles between successive request completions (1/bandwidth).
    pub cycles_per_request: u64,
    next_free: u64,
}

impl FixedLatency {
    /// Creates a pipe with the given latency and service interval.
    pub fn new(latency: u64, cycles_per_request: u64) -> Self {
        Self {
            latency,
            cycles_per_request,
            next_free: 0,
        }
    }
}

impl MemoryBackend for FixedLatency {
    fn request(&mut self, _addr: u64, _is_write: bool, cycle: u64) -> u64 {
        let start = cycle.max(self.next_free);
        self.next_free = start + self.cycles_per_request;
        start + self.latency
    }
}

/// The detailed backend: requests route through the EHP address map into
/// banked HBM stack models, so row-buffer locality and bank conflicts show
/// up in the timing.
pub struct HbmBackend {
    map: AddressMap,
    stacks: Vec<HbmStack>,
    /// Extra round-trip cycles for NoC traversal to a stack.
    pub noc_cycles: u64,
}

impl HbmBackend {
    /// Builds the backend with `stacks` default-parameter HBM stacks.
    pub fn new(stacks: u32) -> Self {
        Self {
            map: AddressMap::new(stacks, 32 << 30, 4096),
            stacks: (0..stacks).map(|_| HbmStack::with_defaults()).collect(),
            noc_cycles: 20,
        }
    }

    /// Aggregate row-buffer hit rate across stacks.
    pub fn row_hit_rate(&self) -> f64 {
        let (hits, total) = self
            .stacks
            .iter()
            .map(|s| s.stats())
            .fold((0u64, 0u64), |(h, t), s| (h + s.row_hits, t + s.accesses));
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl MemoryBackend for HbmBackend {
    fn request(&mut self, addr: u64, is_write: bool, cycle: u64) -> u64 {
        let (stack, offset) = self.map.fold_in_package(addr);
        let dir = if is_write {
            Direction::Write
        } else {
            Direction::Read
        };
        let r = self.stacks[stack as usize].service(offset, 64, dir, cycle + self.noc_cycles);
        r.complete_cycle + self.noc_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_serializes_at_its_bandwidth() {
        let mut m = FixedLatency::new(100, 4);
        let a = m.request(0, false, 0);
        let b = m.request(64, false, 0);
        let c = m.request(128, false, 0);
        assert_eq!(a, 100);
        assert_eq!(b, 104);
        assert_eq!(c, 108);
    }

    #[test]
    fn fixed_latency_idles_between_bursts() {
        let mut m = FixedLatency::new(50, 4);
        let a = m.request(0, false, 0);
        let b = m.request(0, false, 1000);
        assert_eq!(a, 50);
        assert_eq!(b, 1050);
    }

    #[test]
    fn hbm_backend_rewards_row_locality() {
        let mut streaming = HbmBackend::new(8);
        let mut c = 0;
        for i in 0..512u64 {
            c += 4;
            streaming.request(i * 64, false, c);
        }
        let mut random = HbmBackend::new(8);
        let mut c = 0;
        let mut x = 7u64;
        for _ in 0..512 {
            c += 4;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            random.request((x % (1 << 24)) * 64, false, c);
        }
        assert!(streaming.row_hit_rate() > random.row_hit_rate());
    }

    #[test]
    fn hbm_backend_spreads_across_stacks() {
        let mut b = HbmBackend::new(8);
        for page in 0..64u64 {
            b.request(page * 4096, false, page * 10);
        }
        let active = b.stacks.iter().filter(|s| s.stats().accesses > 0).count();
        assert_eq!(active, 8);
    }
}

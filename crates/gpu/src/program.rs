//! Wavefront programs: the instruction streams the timing model executes.
//!
//! A [`WavefrontProgram`] is a compact schedule of what one wavefront does:
//! issue compute for some cycles, issue memory requests, or wait for
//! outstanding requests to drain. Programs are either synthesized from a
//! [`KernelProfile`](ena_model::KernelProfile) ([`crate::synth`]) or built
//! by hand for microbenchmark-style tests.

/// One operation in a wavefront's instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Occupy the SIMD for `cycles`, retiring `flops` double-precision
    /// operations.
    Compute {
        /// Issue cycles consumed.
        cycles: u32,
        /// DP FLOPs retired.
        flops: u32,
    },
    /// Issue a non-blocking memory request for the line at `addr`.
    Load {
        /// Logical byte address.
        addr: u64,
    },
    /// Issue a non-blocking store for the line at `addr`.
    Store {
        /// Logical byte address.
        addr: u64,
    },
    /// Stall until at most `max_outstanding` requests remain in flight.
    Wait {
        /// Allowed in-flight requests after the wait.
        max_outstanding: u32,
    },
}

/// The instruction stream of one wavefront.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WavefrontProgram {
    ops: Vec<Op>,
}

impl WavefrontProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an op (builder style).
    pub fn push(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total DP FLOPs the program retires.
    pub fn total_flops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute { flops, .. } => u64::from(*flops),
                _ => 0,
            })
            .sum()
    }

    /// Total memory requests the program issues.
    pub fn total_requests(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Load { .. } | Op::Store { .. }))
            .count() as u64
    }

    /// Minimum issue cycles if memory were infinitely fast.
    pub fn compute_cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute { cycles, .. } => u64::from(*cycles),
                Op::Load { .. } | Op::Store { .. } => 1,
                Op::Wait { .. } => 0,
            })
            .sum()
    }
}

impl FromIterator<Op> for WavefrontProgram {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        Self {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sums_ops() {
        let p = WavefrontProgram::new()
            .push(Op::Compute {
                cycles: 4,
                flops: 128,
            })
            .push(Op::Load { addr: 0 })
            .push(Op::Load { addr: 64 })
            .push(Op::Wait { max_outstanding: 0 })
            .push(Op::Compute {
                cycles: 2,
                flops: 64,
            });
        assert_eq!(p.total_flops(), 192);
        assert_eq!(p.total_requests(), 2);
        assert_eq!(p.compute_cycles(), 4 + 1 + 1 + 2);
        assert_eq!(p.ops().len(), 5);
    }

    #[test]
    fn collects_from_iterator() {
        let p: WavefrontProgram = (0..3).map(|i| Op::Load { addr: i * 64 }).collect();
        assert_eq!(p.total_requests(), 3);
    }
}

//! Property-based tests for the GPU timing simulator.

use ena_gpu::backend::FixedLatency;
use ena_gpu::program::{Op, WavefrontProgram};
use ena_gpu::sim::{CuConfig, GpuSim};
use ena_testkit::prelude::*;

fn arbitrary_program() -> impl Strategy<Value = WavefrontProgram> {
    ena_testkit::collection::vec(
        prop_oneof![
            (1u32..8, 1u32..512).prop_map(|(cycles, flops)| Op::Compute { cycles, flops }),
            (0u64..1 << 20).prop_map(|line| Op::Load { addr: line * 64 }),
            (0u64..1 << 20).prop_map(|line| Op::Store { addr: line * 64 }),
            (0u32..4).prop_map(|m| Op::Wait { max_outstanding: m }),
        ],
        1..60,
    )
    .prop_map(|ops| ops.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_work_is_retired_exactly_once(
        program in arbitrary_program(),
        copies in 1usize..6,
    ) {
        let mut mem = FixedLatency::new(100, 2);
        let stats = GpuSim::new(CuConfig::default(), &mut mem).run(vec![program.clone(); copies]);
        prop_assert_eq!(stats.flops, program.total_flops() * copies as u64);
        prop_assert_eq!(stats.requests, program.total_requests() * copies as u64);
        prop_assert!(stats.cycles >= 1);
        prop_assert!(stats.issued_ops <= stats.issue_slots);
    }

    #[test]
    fn makespan_never_beats_the_compute_lower_bound(program in arbitrary_program()) {
        let mut mem = FixedLatency::new(50, 1);
        let stats = GpuSim::new(CuConfig::default(), &mut mem).run(vec![program.clone()]);
        // A single wavefront cannot finish faster than its issue cycles.
        prop_assert!(stats.cycles + 1 >= program.compute_cycles());
    }

    #[test]
    fn slower_memory_never_speeds_things_up(
        program in arbitrary_program(),
        extra in 1u64..400,
    ) {
        let run = |latency: u64| {
            let mut mem = FixedLatency::new(latency, 2);
            GpuSim::new(CuConfig::default(), &mut mem).run(vec![program.clone(); 2]).cycles
        };
        prop_assert!(run(100 + extra) >= run(100));
    }

    #[test]
    fn the_simulator_is_deterministic(program in arbitrary_program()) {
        let run = || {
            let mut mem = FixedLatency::new(120, 3);
            GpuSim::new(CuConfig::default(), &mut mem).run(vec![program.clone(); 3])
        };
        prop_assert_eq!(run(), run());
    }
}

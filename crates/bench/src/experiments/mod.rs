//! The paper's evaluation artifacts, one module per table/figure.

pub mod ablations;
pub mod context;
pub mod extensions;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig4_6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hsa_cost;
pub mod table1;
pub mod table2;
pub mod validation;

/// Every experiment name the `figures` binary accepts, in paper order.
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table2",
    "ablations",
    "validation",
    "extensions",
    "substrates",
];

/// Runs one experiment by name, returning its printed report.
///
/// Returns `None` for unknown names.
pub fn run(name: &str) -> Option<String> {
    Some(match name {
        "table1" => table1::run(),
        "fig4" => fig4_6::run("MaxFlops"),
        "fig5" => fig4_6::run("CoMD"),
        "fig6" => fig4_6::run("LULESH"),
        "fig7" => fig7::run(),
        "fig8" => fig8::run(),
        "fig9" => fig9::run(),
        "fig10" => fig10::run(),
        "fig11" => fig11::run(),
        "fig12" => fig12::run(),
        "fig13" => fig13::run(),
        "fig14" => fig14::run(),
        "table2" => table2::run(),
        "ablations" => ablations::run(),
        "validation" => validation::run(),
        "extensions" => extensions::run(),
        "substrates" => hsa_cost::run(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_rejected() {
        assert!(run("fig99").is_none());
    }

    #[test]
    fn experiment_list_is_dispatchable() {
        // Spot-check the cheap ones end-to-end; the expensive ones have
        // their own module tests.
        for name in ["table1", "fig14"] {
            let out = run(name).unwrap();
            assert!(!out.is_empty(), "{name}");
        }
    }
}

//! Fig. 7: out-of-chiplet traffic and the chiplet organization's
//! performance cost relative to a monolithic EHP.
//!
//! Drives workload-shaped traffic through the packet-level NoC simulator
//! on both topologies (Section V-A). The paper shows XSBench, SNAP, and
//! CoMD; we run the full suite and report the paper's three first.

use ena_core::chiplet::{chiplet_study, ChipletStudy};
use ena_model::config::EhpConfig;
use ena_workloads::paper_profiles;

use crate::TextTable;

/// The workloads the paper's Fig. 7 shows.
pub const PAPER_APPS: [&str; 3] = ["XSBench", "SNAP", "CoMD"];

/// Requests injected per chiplet per study.
const REQUESTS_PER_CHIPLET: u32 = 3000;

/// Runs the study for every workload in the suite.
pub fn studies() -> Vec<ChipletStudy> {
    let config = EhpConfig::paper_baseline();
    let mut all: Vec<ChipletStudy> = paper_profiles()
        .iter()
        .map(|p| chiplet_study(&config, p, REQUESTS_PER_CHIPLET, 0xF167))
        .collect();
    // Paper order: the three shown first, then the rest.
    all.sort_by_key(|s| {
        PAPER_APPS
            .iter()
            .position(|&n| n == s.app)
            .unwrap_or(usize::MAX)
    });
    all
}

/// Regenerates Fig. 7.
pub fn run() -> String {
    let mut t = TextTable::new([
        "app",
        "out-of-chiplet traffic %",
        "perf vs monolithic %",
        "chiplet lat (cyc)",
        "monolithic lat (cyc)",
    ]);
    for s in studies() {
        t.row([
            s.app.clone(),
            format!("{:.1}", 100.0 * s.out_of_chiplet_fraction),
            format!("{:.1}", 100.0 * s.perf_relative_to_monolithic),
            format!("{:.1}", s.chiplet_latency_cycles),
            format!("{:.1}", s.monolithic_latency_cycles),
        ]);
    }
    format!(
        "Fig. 7: out-of-chiplet traffic and impact on performance\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_and_impact_match_the_papers_findings() {
        let all = studies();
        for s in &all {
            // Finding 1: 60-95 % out-of-chiplet traffic.
            assert!(
                (0.55..=0.97).contains(&s.out_of_chiplet_fraction),
                "{}: {}",
                s.app,
                s.out_of_chiplet_fraction
            );
            // Finding 2: worst degradation ~13 %.
            assert!(
                s.perf_relative_to_monolithic >= 0.85,
                "{}: {}",
                s.app,
                s.perf_relative_to_monolithic
            );
        }
        // Some kernels are nearly unaffected (SNAP in the paper).
        assert!(all.iter().any(|s| s.perf_relative_to_monolithic > 0.97));
    }

    #[test]
    fn report_lists_the_papers_three_apps_first() {
        let out = run();
        let xs = out.find("XSBench").unwrap();
        let snap = out.find("SNAP").unwrap();
        let comd = out.find("CoMD").unwrap();
        assert!(xs < snap && snap < comd, "{out}");
    }
}

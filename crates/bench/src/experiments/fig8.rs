//! Fig. 8: performance impact of in-package DRAM miss rates.
//!
//! Artificially varies the fraction of memory requests serviced by
//! external memory (0-100 %) and reports throughput normalized to the
//! no-miss case, per application (Section V-B).

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_model::config::EhpConfig;
use ena_workloads::paper_profiles;

use crate::TextTable;

/// The paper's miss-rate sweep.
pub const MISS_RATES: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Per-app normalized-performance series.
pub fn series() -> Vec<(String, Vec<f64>)> {
    let sim = NodeSimulator::new();
    let config = EhpConfig::paper_baseline();
    paper_profiles()
        .iter()
        .map(|p| {
            let clean = sim
                .evaluate(&config, p, &EvalOptions::with_miss_fraction(0.0))
                .perf
                .throughput
                .value();
            let points = MISS_RATES
                .iter()
                .map(|&m| {
                    sim.evaluate(&config, p, &EvalOptions::with_miss_fraction(m))
                        .perf
                        .throughput
                        .value()
                        / clean
                })
                .collect();
            (p.name.clone(), points)
        })
        .collect()
}

/// Regenerates Fig. 8.
pub fn run() -> String {
    let mut header = vec!["app".to_string()];
    header.extend(MISS_RATES.iter().map(|m| format!("{:.0}%", m * 100.0)));
    let mut t = TextTable::new(header);
    for (app, points) in series() {
        let mut row = vec![app];
        row.extend(points.iter().map(|v| format!("{v:.3}")));
        t.row(row);
    }
    format!(
        "Fig. 8: performance vs in-package DRAM miss rate (normalized to no misses)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_band_matches_the_paper() {
        // Paper: MaxFlops flat; others degrade 7-75 % at high miss rates.
        for (app, points) in series() {
            let at_full = *points.last().unwrap();
            if app == "MaxFlops" {
                assert!((at_full - 1.0).abs() < 0.02, "MaxFlops moved: {at_full}");
            } else {
                let degradation = 1.0 - at_full;
                assert!(
                    (0.02..=0.85).contains(&degradation),
                    "{app}: degradation {degradation}"
                );
            }
        }
    }

    #[test]
    fn performance_is_monotone_in_miss_rate() {
        for (app, points) in series() {
            for pair in points.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-9, "{app}: non-monotone {pair:?}");
            }
        }
    }

    #[test]
    fn zero_miss_normalizes_to_one() {
        for (_, points) in series() {
            assert!((points[0] - 1.0).abs() < 1e-12);
        }
    }
}

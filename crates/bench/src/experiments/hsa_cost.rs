//! Substrate studies: the HSA runtime (Section II-A.1) and the chiplet
//! cost argument (Section II-A.2), both quantified.

use ena_hsa::runtime::{Runtime, RuntimeConfig};
use ena_hsa::sync::SyncModel;
use ena_hsa::task::{TaskCost, TaskGraph};
use ena_model::cost::{chiplet_package, monolithic_package, AssemblyCost, ProcessCost};
use ena_model::units::SquareMillimeters;

use crate::TextTable;

/// Offload-granularity sweep: the same 40 ms of GPU work split into `k`
/// independent kernels, executed under HSA user-mode dispatch and under a
/// legacy driver path. Returns `(k, hsa_ms, legacy_ms)`.
pub fn granularity_sweep() -> Vec<(u32, f64, f64)> {
    const TOTAL_US: f64 = 40_000.0;
    [1u32, 8, 64, 512, 4096]
        .iter()
        .map(|&k| {
            let mut g = TaskGraph::new();
            let pre = g.add("pre", TaskCost::cpu(10.0), &[]).expect("valid");
            let kernels: Vec<_> = (0..k)
                .map(|i| {
                    g.add(
                        format!("k{i}"),
                        TaskCost::gpu(TOTAL_US / f64::from(k)),
                        &[pre],
                    )
                    .expect("valid")
                })
                .collect();
            g.add("post", TaskCost::cpu(10.0), &kernels).expect("valid");

            let hsa = Runtime::new(RuntimeConfig::hsa()).execute(&g).makespan_us;
            let legacy = Runtime::new(RuntimeConfig::legacy_driver())
                .execute(&g)
                .makespan_us;
            (k, hsa / 1000.0, legacy / 1000.0)
        })
        .collect()
}

/// CPU-GPU ping-pong under the two memory models. Returns
/// `(model name, makespan_us, sync_overhead_us)`.
pub fn sync_comparison() -> Vec<(&'static str, f64, f64)> {
    let mut g = TaskGraph::new();
    let mut prev = g.add("c", TaskCost::cpu(3.0), &[]).expect("valid");
    for i in 0..200 {
        let cost = if i % 2 == 0 {
            TaskCost::gpu(3.0)
        } else {
            TaskCost::cpu(3.0)
        };
        prev = g.add(format!("t{i}"), cost, &[prev]).expect("valid");
    }
    [SyncModel::conventional(), SyncModel::quick_release()]
        .into_iter()
        .map(|sync| {
            let cfg = RuntimeConfig {
                sync,
                ..RuntimeConfig::hsa()
            };
            let s = Runtime::new(cfg).execute(&g);
            (sync.name, s.makespan_us, s.sync_overhead_us)
        })
        .collect()
}

/// The EHP package cost vs equivalent monoliths. Returns rows of
/// `(label, silicon $, total $ per good package)`.
pub fn package_costs() -> Vec<(String, f64, f64)> {
    let compute = ProcessCost::leading_edge();
    let interposer = ProcessCost::mature_node();
    let assembly = AssemblyCost::default();
    let mm2 = SquareMillimeters::new;

    let mut rows = Vec::new();
    let ehp = chiplet_package(
        &compute,
        &interposer,
        &assembly,
        &[(8, mm2(100.0)), (8, mm2(70.0))],
        mm2(800.0),
    );
    rows.push((
        "EHP: 16 chiplets + interposer".to_string(),
        ehp.silicon,
        ehp.total(),
    ));

    for area in [400.0, 680.0, 830.0, 1360.0] {
        let mono = monolithic_package(&compute, &assembly, mm2(area));
        rows.push((
            format!("monolithic {area:.0} mm2"),
            mono.silicon,
            mono.total(),
        ));
    }
    rows
}

/// Regenerates the substrate-study report.
pub fn run() -> String {
    let mut out = String::from("Substrate studies (Sections II-A.1 and II-A.2)\n\n");

    out.push_str("1. Offload granularity: 40 ms of GPU work in k kernels\n");
    let mut t = TextTable::new(["kernels", "HSA dispatch (ms)", "legacy driver (ms)"]);
    for (k, hsa, legacy) in granularity_sweep() {
        t.row([format!("{k}"), format!("{hsa:.2}"), format!("{legacy:.2}")]);
    }
    out.push_str(&t.render());

    out.push_str("\n2. CPU-GPU ping-pong (200 tasks) under the two memory models\n");
    let mut t = TextTable::new(["memory model", "makespan (us)", "sync overhead (us)"]);
    for (name, makespan, sync) in sync_comparison() {
        t.row([
            name.to_string(),
            format!("{makespan:.1}"),
            format!("{sync:.1}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n3. Package cost: chiplets + interposer vs monolithic\n");
    let mut t = TextTable::new(["package", "silicon ($)", "per good package ($)"]);
    for (label, silicon, total) in package_costs() {
        let fmt = |v: f64| {
            if v.is_finite() {
                format!("{v:.0}")
            } else {
                "unbuildable".to_string()
            }
        };
        t.row([label, fmt(silicon), fmt(total)]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsa_wins_and_wins_more_at_fine_granularity() {
        let sweep = granularity_sweep();
        for &(k, hsa, legacy) in &sweep {
            assert!(hsa <= legacy + 1e-9, "k={k}: hsa {hsa} > legacy {legacy}");
        }
        let coarse_gap = sweep[0].2 / sweep[0].1;
        let fine_gap = sweep.last().unwrap().2 / sweep.last().unwrap().1;
        assert!(
            fine_gap > coarse_gap,
            "coarse {coarse_gap}, fine {fine_gap}"
        );
    }

    #[test]
    fn quick_release_beats_conventional_on_pingpong() {
        let rows = sync_comparison();
        let conv = rows.iter().find(|r| r.0 == "conventional").unwrap();
        let qr = rows.iter().find(|r| r.0 == "quick-release").unwrap();
        assert!(qr.1 < conv.1, "makespan {} vs {}", qr.1, conv.1);
        assert!(qr.2 < conv.2 / 2.0, "sync {} vs {}", qr.2, conv.2);
    }

    #[test]
    fn the_monolithic_ehp_is_unbuildable_but_chiplets_are_cheap() {
        let rows = package_costs();
        let ehp = &rows[0];
        assert!(ehp.2.is_finite());
        let full_mono = rows.iter().find(|r| r.0.contains("1360")).unwrap();
        assert!(full_mono.2.is_infinite());
        // And even the largest buildable monolith costs more than the
        // chiplet package of comparable compute area.
        let reticle_mono = rows.iter().find(|r| r.0.contains("830")).unwrap();
        assert!(reticle_mono.2 > ehp.2 * 0.5);
    }
}

//! Extension studies built on the paper's "important research directions"
//! (Section VI): dynamic resource reconfiguration as an actual runtime
//! (not just the Table II oracle bound), and the resiliency interactions
//! of Section II-A.5 / VI (ECC, RMT, NTC's voltage-reliability coupling).

use ena_core::dse::DesignSpace;
use ena_core::node::NodeSimulator;
use ena_core::reconfig::{run_phases, OraclePolicy, Phase, ReactivePolicy, StaticPolicy};
use ena_core::resilience::{checkpoint_efficiency, Protection, ResilienceModel};
use ena_core::Explorer;
use ena_model::config::{EhpConfig, SYSTEM_NODE_COUNT};
use ena_model::units::Seconds;
use ena_workloads::{paper_profiles, profile_for};

use crate::TextTable;

/// A phased workload: runs of compute-heavy CoMD interleaved with
/// memory-heavy LULESH and latency-bound XSBench.
fn phased_workload() -> Vec<Phase> {
    let mut phases = Vec::new();
    for (name, work, repeats) in [
        ("CoMD", 80_000.0, 3),
        ("LULESH", 12_000.0, 3),
        ("CoMD", 80_000.0, 3),
        ("XSBench", 2_000.0, 3),
    ] {
        let profile = profile_for(name).expect("suite app");
        for _ in 0..repeats {
            phases.push(Phase {
                profile: profile.clone(),
                work_gflop: work,
            });
        }
    }
    phases
}

/// Runs the reconfiguration-policy comparison.
pub fn reconfiguration() -> Vec<(String, f64, f64, u32)> {
    let sim = NodeSimulator::new();
    let explorer = Explorer::default();
    let space = DesignSpace::coarse();
    let profiles = paper_profiles();
    let phases = phased_workload();
    let penalty = Seconds::new(2e-3);
    let mean = explorer
        .explore(&space, &profiles)
        .expect("exploration succeeds")
        .best_mean;

    let mut static_p = StaticPolicy(mean);
    let mut reactive_p =
        ReactivePolicy::new(&explorer, &space, &profiles).expect("exploration succeeds");
    let mut oracle_p =
        OraclePolicy::new(&explorer, &space, &profiles).expect("exploration succeeds");
    let mut out = Vec::new();
    let policies: [&mut dyn ena_core::reconfig::ReconfigPolicy; 3] =
        [&mut static_p, &mut reactive_p, &mut oracle_p];
    for policy in policies {
        let r = run_phases(&sim, policy, &phases, &explorer.options, penalty)
            .expect("phased run succeeds");
        out.push((
            r.policy.to_string(),
            r.time.value(),
            r.energy.value(),
            r.switches,
        ));
    }
    out
}

/// Runs the RAS assessment: protection schemes x voltage modes.
pub fn resilience() -> Vec<(String, f64, f64, f64)> {
    let model = ResilienceModel::default();
    let config = EhpConfig::paper_baseline();
    let comd = profile_for("CoMD").expect("suite app");
    let mut out = Vec::new();
    for (label, voltage, protection) in [
        ("ECC only, nominal V", 1.0, Protection::ecc_only()),
        ("ECC+RMT, nominal V", 1.0, Protection::ecc_and_rmt()),
        ("ECC only, NTC V", 0.75, Protection::ecc_only()),
        ("ECC+RMT, NTC V", 0.75, Protection::ecc_and_rmt()),
    ] {
        let r = model.assess(&config, &comd, voltage, protection);
        let mttf = r.system_mttf_hours(SYSTEM_NODE_COUNT);
        out.push((
            label.to_string(),
            mttf,
            checkpoint_efficiency(mttf, 2.0),
            r.rmt_slowdown,
        ));
    }
    out
}

/// Regenerates the extension report.
pub fn run() -> String {
    let mut out = String::from("Extensions (paper Section VI research directions)\n\n");

    out.push_str("1. Dynamic reconfiguration runtime on a phased workload\n");
    let mut t = TextTable::new(["policy", "time (s)", "energy (kJ)", "switches"]);
    let rows = reconfiguration();
    let baseline = rows[0].1;
    for (policy, time, energy, switches) in &rows {
        t.row([
            format!("{policy} ({:+.1}%)", 100.0 * (time / baseline - 1.0)),
            format!("{time:.2}"),
            format!("{:.1}", energy / 1000.0),
            format!("{switches}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n2. Resiliency: protection schemes x voltage (100,000 nodes, CoMD)\n");
    let mut t = TextTable::new([
        "scheme",
        "system MTTF (h)",
        "checkpoint efficiency",
        "RMT slowdown",
    ]);
    for (label, mttf, eff, slow) in resilience() {
        t.row([
            label,
            format!("{mttf:.2}"),
            format!("{eff:.3}"),
            format!("{slow:.2}"),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_reconfiguration_is_fastest() {
        let rows = reconfiguration();
        let time = |name: &str| rows.iter().find(|r| r.0 == name).unwrap().1;
        assert!(time("oracle") <= time("reactive") + 1e-9);
        assert!(time("oracle") < time("static"));
    }

    #[test]
    fn rmt_and_ecc_buy_mttf_while_ntc_spends_it() {
        let rows = resilience();
        let mttf = |name: &str| rows.iter().find(|r| r.0.starts_with(name)).unwrap().1;
        assert!(mttf("ECC+RMT, nominal") > mttf("ECC only, nominal"));
        assert!(mttf("ECC only, NTC") < mttf("ECC only, nominal"));
        assert!(mttf("ECC+RMT, NTC") > mttf("ECC only, NTC"));
    }

    #[test]
    fn report_has_both_sections() {
        let out = run();
        assert!(out.contains("Dynamic reconfiguration"));
        assert!(out.contains("Resiliency"));
    }
}

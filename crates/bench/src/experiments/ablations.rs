//! Beyond-paper ablations of design knobs the paper fixes.
//!
//! These use the trace-driven substrates with *real* traces from the
//! executable mini-kernels:
//!
//! 1. **Interleave granularity** — how evenly traffic spreads across the
//!    eight DRAM stacks as the interleave granule grows.
//! 2. **Migration epoch** — the software-managed policy's in-package
//!    service fraction vs its monitoring epoch length.
//! 3. **Row-buffer locality** — per-app open-row hit rates in the
//!    in-package stacks, explaining which kernels exploit DRAM pages.

use ena_memory::hbm::{Direction, HbmStack};
use ena_memory::interleave::{AddressMap, Tier};
use ena_memory::policy::{
    run_policy, PlacementPolicy, SetAssociativeCache, SoftwareManaged, StaticPlacement,
};
use ena_noc::sim::NocSim;
use ena_noc::topology::Topology;
use ena_noc::traffic::{stack_for_address, WorkloadTraffic};
use ena_workloads::app::RunConfig;
use ena_workloads::apps::all_apps;
use ena_workloads::profile_for;
use ena_workloads::trace::AccessKind;

use crate::TextTable;

/// Interleave-granularity ablation: per granule size, the ratio of the
/// busiest stack's traffic to the mean (1.0 = perfectly balanced).
pub fn interleave_balance(app_name: &str) -> Vec<(u64, f64)> {
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name() == app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}"));
    let run = app.run(&RunConfig::small());
    [256u64, 1024, 4096, 16384, 65536]
        .iter()
        .map(|&granule| {
            let mut counts = [0u64; 8];
            for a in run.trace.accesses() {
                counts[stack_for_address(a.addr, 8, granule) as usize] += 1;
            }
            let total: u64 = counts.iter().sum();
            let mean = total as f64 / 8.0;
            let max = *counts.iter().max().unwrap() as f64;
            (granule, if mean > 0.0 { max / mean } else { 1.0 })
        })
        .collect()
}

/// Migration-epoch ablation: per epoch length, the in-package service
/// fraction and the migration count for one app's trace under a deliberately
/// small in-package capacity (so the policy has real work to do).
pub fn migration_epochs(app_name: &str) -> Vec<(u64, f64, u64)> {
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name() == app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}"));
    let run = app.run(&RunConfig::small());
    let footprint = run.trace.footprint_bytes();
    let capacity = (footprint / 4).max(16 * 4096);

    [500u64, 2_000, 10_000, 50_000]
        .iter()
        .map(|&epoch| {
            let mut policy = SoftwareManaged::new(capacity);
            let accesses = run
                .trace
                .accesses()
                .iter()
                .map(|a| (a.addr, a.kind == AccessKind::Write));
            let stats = run_policy(&mut policy, accesses, epoch);
            (epoch, stats.in_package_fraction(), stats.migrations)
        })
        .collect()
}

/// Row-buffer ablation: per app, the open-row hit rate of stack 0
/// servicing its share of the page-interleaved trace.
pub fn row_buffer_hit_rates() -> Vec<(String, f64)> {
    // Fold each app's sparse logical space through the real address map so
    // stack-local offsets preserve the access structure.
    let map = AddressMap::new(8, 32 << 30, 4096);
    all_apps()
        .iter()
        .map(|app| {
            let run = app.run(&RunConfig::small());
            let mut stack = HbmStack::with_defaults();
            let mut cycle = 0;
            for a in run.trace.accesses() {
                let folded = a.addr % map.in_package_bytes();
                if let Tier::InPackage { stack: 0, offset } = map.locate(folded) {
                    let dir = if a.kind == AccessKind::Write {
                        Direction::Write
                    } else {
                        Direction::Read
                    };
                    cycle += 4;
                    stack.service(offset, 64, dir, cycle);
                }
            }
            (app.name().to_string(), stack.stats().row_hit_rate())
        })
        .collect()
}

/// Interposer-topology ablation: mean packet latency for SNAP-shaped
/// traffic on the chain, ring, and monolithic-crossbar interconnects.
pub fn interposer_topologies() -> Vec<(&'static str, f64)> {
    let profile = profile_for("SNAP").expect("suite app");
    let traffic = WorkloadTraffic::from_profile(&profile, 99);
    [
        ("chain", Topology::ehp(8, 8)),
        ("ring", Topology::ehp_ring(8, 8)),
        ("crossbar (monolithic)", Topology::monolithic(8, 8)),
    ]
    .into_iter()
    .map(|(name, topo)| {
        let packets = traffic.generate(&topo, 2000);
        let stats = NocSim::new(&topo).run(&packets);
        (name, stats.avg_latency_cycles())
    })
    .collect()
}

/// Multi-level management comparison: in-package service fraction per
/// policy on one app's trace, at capacity = footprint/2.
pub fn policy_comparison(app_name: &str) -> Vec<(&'static str, f64)> {
    let apps = all_apps();
    let app = apps
        .iter()
        .find(|a| a.name() == app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}"));
    let run = app.run(&RunConfig::small());
    let capacity = (run.trace.footprint_bytes() / 2).max(64 * 4096);
    let policies: Vec<Box<dyn PlacementPolicy>> = vec![
        Box::new(StaticPlacement::new(0.5)),
        Box::new(SoftwareManaged::new(capacity)),
        Box::new(ena_memory::policy::HardwareCache::new(capacity)),
        Box::new(SetAssociativeCache::new(capacity, 8)),
    ];
    policies
        .into_iter()
        .map(|mut policy| {
            let name = policy.name();
            let accesses = run
                .trace
                .accesses()
                .iter()
                .map(|a| (a.addr, a.kind == AccessKind::Write));
            let stats = run_policy(policy.as_mut(), accesses, 5_000);
            (name, stats.in_package_fraction())
        })
        .collect()
}

/// Regenerates the ablation report.
pub fn run() -> String {
    let mut out = String::from("Ablations (beyond the paper)\n\n");

    out.push_str("1. Interleave granularity vs stack balance (XSBench; 1.0 = balanced)\n");
    let mut t = TextTable::new(["granule (B)", "max/mean stack traffic"]);
    for (g, ratio) in interleave_balance("XSBench") {
        t.row([format!("{g}"), format!("{ratio:.3}")]);
    }
    out.push_str(&t.render());

    out.push_str("\n2. Software-managed migration epoch (XSBench, capacity = footprint/4)\n");
    let mut t = TextTable::new(["epoch (accesses)", "in-package fraction", "migrations"]);
    for (epoch, frac, mig) in migration_epochs("XSBench") {
        t.row([format!("{epoch}"), format!("{frac:.3}"), format!("{mig}")]);
    }
    out.push_str(&t.render());

    out.push_str("\n3. In-package DRAM row-buffer hit rate per application\n");
    let mut t = TextTable::new(["app", "row hit rate"]);
    for (app, rate) in row_buffer_hit_rates() {
        t.row([app, format!("{rate:.3}")]);
    }
    out.push_str(&t.render());

    out.push_str("\n4. Interposer interconnect topology (SNAP traffic)\n");
    let mut t = TextTable::new(["topology", "avg latency (cycles)"]);
    for (name, lat) in interposer_topologies() {
        t.row([name.to_string(), format!("{lat:.1}")]);
    }
    out.push_str(&t.render());

    out.push_str("\n5. Multi-level management policies (SNAP, capacity = footprint/2)\n");
    let mut t = TextTable::new(["policy", "in-package fraction"]);
    for (name, frac) in policy_comparison("SNAP") {
        t.row([name.to_string(), format!("{frac:.3}")]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granules_balance_best() {
        // Very fine granules alias with the kernel's structured strides and
        // very coarse granules under-interleave; page granularity balances.
        let balance: std::collections::BTreeMap<u64, f64> =
            interleave_balance("XSBench").into_iter().collect();
        assert!(balance[&4096] < 1.3, "page granule = {}", balance[&4096]);
        assert!(balance[&4096] <= balance[&256] + 1e-9);
        assert!(balance[&4096] <= balance[&65536] + 1e-9);
    }

    #[test]
    fn migration_epochs_trade_adaptivity() {
        let sweep = migration_epochs("XSBench");
        for (_, frac, _) in &sweep {
            assert!((0.0..=1.0).contains(frac));
        }
        // Shorter epochs migrate at least as often as longer ones.
        assert!(
            sweep.first().unwrap().2 >= sweep.last().unwrap().2,
            "{sweep:?}"
        );
    }

    #[test]
    fn ring_sits_between_chain_and_crossbar() {
        let rows: std::collections::BTreeMap<&str, f64> =
            interposer_topologies().into_iter().collect();
        assert!(rows["ring"] <= rows["chain"] + 1e-9);
        assert!(rows["crossbar (monolithic)"] < rows["ring"]);
    }

    #[test]
    fn software_management_beats_static_placement_on_reuse_heavy_traces() {
        let rows: std::collections::BTreeMap<&str, f64> =
            policy_comparison("SNAP").into_iter().collect();
        assert!(rows["software-managed"] > rows["static"], "{rows:?}");
        for frac in rows.values() {
            assert!((0.0..=1.0).contains(frac));
        }
    }

    #[test]
    fn streaming_kernels_hit_rows_harder_than_random_ones() {
        let rates: std::collections::BTreeMap<String, f64> =
            row_buffer_hit_rates().into_iter().collect();
        assert!(
            rates["MiniAMR"] > rates["XSBench"],
            "MiniAMR {} vs XSBench {}",
            rates["MiniAMR"],
            rates["XSBench"]
        );
    }
}

//! Shared experiment context: simulator, design space, best-mean config.

use ena_core::dse::{ConfigPoint, DesignSpace, DseResult, Explorer};
use ena_core::node::NodeSimulator;
use ena_workloads::paper_profiles;

/// The miss fraction assumed for the design-space studies: the
/// software-managed multi-level memory keeps the hot working set largely
/// resident (Section II-B.3); the capacity-limited 46-89 % figures are the
/// Fig. 8/9 regime.
pub const DSE_MISS_FRACTION: f64 = 0.15;

/// The node simulator used by all experiments.
pub fn simulator() -> NodeSimulator {
    NodeSimulator::new()
}

/// The design space used by the experiment harness. The coarse 100 MHz
/// grid keeps every figure reproducible in seconds; `DesignSpace::paper()`
/// is the full >1000-point sweep.
pub fn space() -> DesignSpace {
    DesignSpace::coarse()
}

/// Runs the baseline (no power optimizations) exploration.
pub fn explore_baseline() -> DseResult {
    Explorer::default()
        .explore(&space(), &paper_profiles())
        .expect("baseline exploration succeeds")
}

/// Runs the exploration with all Section V-E power optimizations enabled.
pub fn explore_optimized() -> DseResult {
    let mut options = ena_core::node::EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);
    options.optimizations = ena_power::opts::PowerOptimization::ALL.to_vec();
    let explorer = Explorer {
        options,
        ..Explorer::default()
    };
    explorer
        .explore(&space(), &paper_profiles())
        .expect("optimized exploration succeeds")
}

/// The best-mean configuration of the baseline exploration.
pub fn best_mean() -> ConfigPoint {
    explore_baseline().best_mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_mean_is_in_the_papers_neighborhood() {
        let p = best_mean();
        assert!((288..=384).contains(&p.cus));
        let tbps = p.bandwidth.terabytes_per_sec();
        assert!((2.0..=4.0).contains(&tbps), "bw = {tbps}");
    }

    #[test]
    fn optimizations_expand_the_feasible_set() {
        let base = explore_baseline();
        let opt = explore_optimized();
        assert!(opt.feasible >= base.feasible);
    }
}

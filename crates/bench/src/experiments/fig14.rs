//! Fig. 14: MaxFlops system performance and power vs CU count.
//!
//! Sweeps the CU count at 1 GHz / 1 TB/s and projects to the 100,000-node
//! machine: exaflops (left panel) and megawatts (right panel).

use ena_core::node::EvalOptions;
use ena_core::system::{project_paper_system, SystemProjection};
use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_workloads::profile_for;

use super::context::simulator;
use crate::TextTable;

/// The paper's CU sweep.
pub const CU_COUNTS: [u32; 5] = [192, 224, 256, 288, 320];

/// Projects the system for each CU count.
pub fn projections() -> Vec<(u32, SystemProjection)> {
    let sim = simulator();
    let maxflops = profile_for("MaxFlops").expect("MaxFlops is in the suite");
    CU_COUNTS
        .iter()
        .map(|&cus| {
            let config = EhpConfig::builder()
                .total_cus(cus)
                .gpu_clock(Megahertz::new(1000.0))
                .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(1.0))
                .build()
                .expect("sweep point is valid");
            let p = project_paper_system(
                &sim,
                &config,
                &maxflops,
                &EvalOptions::with_miss_fraction(0.0),
            );
            (cus, p)
        })
        .collect()
}

/// Regenerates Fig. 14.
pub fn run() -> String {
    let mut t = TextTable::new(["CUs per node", "node TF", "system EF", "system MW"]);
    for (cus, p) in projections() {
        t.row([
            format!("{cus}"),
            format!("{:.1}", p.node_teraflops),
            format!("{:.2}", p.exaflops),
            format!("{:.1}", p.power_mw),
        ]);
    }
    format!(
        "Fig. 14: MaxFlops performance and power (100,000 nodes, 1 GHz, 1 TB/s)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_sweep_crosses_an_exaflop_within_budget() {
        let ps = projections();
        let (_, at320) = ps.last().unwrap();
        // Paper: up to 18.6 TF/node -> 1.86 EF at 11.1 MW.
        assert!(at320.exaflops > 1.5, "EF = {}", at320.exaflops);
        assert!(at320.power_mw < 20.0, "MW = {}", at320.power_mw);
    }

    #[test]
    fn performance_is_linear_in_cus() {
        let ps = projections();
        let slope0 = ps[1].1.exaflops - ps[0].1.exaflops;
        let slope_last = ps[4].1.exaflops - ps[3].1.exaflops;
        assert!((slope0 - slope_last).abs() / slope0 < 0.05);
    }

    #[test]
    fn power_is_increasing_in_cus() {
        let ps = projections();
        for w in ps.windows(2) {
            assert!(w[1].1.power_mw > w[0].1.power_mw);
        }
    }
}

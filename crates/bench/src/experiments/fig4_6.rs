//! Figs. 4-6: per-kernel performance as bandwidth and (a) CU frequency or
//! (b) CU count vary.
//!
//! The x-axis is hardware ops-per-byte (`CU-count x GHz / GB/s`); each
//! series is one in-package bandwidth. Performance is normalized to the
//! kernel's throughput at the best-mean configuration, exactly as the
//! paper plots it. Fig. 4 = MaxFlops, Fig. 5 = CoMD, Fig. 6 = LULESH.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz};
use ena_workloads::profile_for;

use super::context::{best_mean, simulator, DSE_MISS_FRACTION};
use crate::TextTable;

/// The bandwidth series the paper sweeps (TB/s).
pub const BANDWIDTHS_TBPS: [f64; 6] = [1.0, 3.0, 4.0, 5.0, 6.0, 7.0];

/// One sweep point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Hardware ops-per-byte (CU-count x GHz / GB/s).
    pub ops_per_byte: f64,
    /// Throughput normalized to the best-mean configuration.
    pub normalized_perf: f64,
}

/// The full two-panel sweep for one application.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Application name.
    pub app: String,
    /// Panel (a): per bandwidth, points swept over CU *frequency*.
    pub by_frequency: Vec<(f64, Vec<SweepPoint>)>,
    /// Panel (b): per bandwidth, points swept over CU *count*.
    pub by_cu_count: Vec<(f64, Vec<SweepPoint>)>,
}

fn eval(sim: &NodeSimulator, app: &str, cus: u32, mhz: f64, tbps: f64) -> f64 {
    let profile = profile_for(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let config = EhpConfig::builder()
        .total_cus(cus)
        .gpu_clock(Megahertz::new(mhz))
        .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(tbps))
        .build()
        .expect("sweep point is valid");
    sim.evaluate(
        &config,
        &profile,
        &EvalOptions::with_miss_fraction(DSE_MISS_FRACTION),
    )
    .perf
    .throughput
    .value()
}

/// Runs the sweep for one application.
pub fn sweep(app: &str) -> Sweep {
    let sim = simulator();
    let mean = best_mean();
    let reference = eval(
        &sim,
        app,
        mean.cus,
        mean.clock.value(),
        mean.bandwidth.terabytes_per_sec(),
    );

    let by_frequency = BANDWIDTHS_TBPS
        .iter()
        .map(|&tbps| {
            let points = (600..=1500)
                .step_by(100)
                .map(|mhz| SweepPoint {
                    ops_per_byte: 320.0 * f64::from(mhz) / 1000.0 / (tbps * 1000.0),
                    normalized_perf: eval(&sim, app, 320, f64::from(mhz), tbps) / reference,
                })
                .collect();
            (tbps, points)
        })
        .collect();

    let by_cu_count = BANDWIDTHS_TBPS
        .iter()
        .map(|&tbps| {
            let points = (192..=384)
                .step_by(32)
                .map(|cus| SweepPoint {
                    ops_per_byte: f64::from(cus) / (tbps * 1000.0),
                    normalized_perf: eval(&sim, app, cus, 1000.0, tbps) / reference,
                })
                .collect();
            (tbps, points)
        })
        .collect();

    Sweep {
        app: app.to_owned(),
        by_frequency,
        by_cu_count,
    }
}

fn render_panel(title: &str, series: &[(f64, Vec<SweepPoint>)]) -> String {
    let mut t = TextTable::new(["TB/s", "ops/byte", "norm. perf"]);
    for (tbps, points) in series {
        for p in points {
            t.row([
                format!("{tbps}"),
                format!("{:.4}", p.ops_per_byte),
                format!("{:.3}", p.normalized_perf),
            ]);
        }
    }
    format!("{title}\n{}", t.render())
}

/// Regenerates the figure for one application.
pub fn run(app: &str) -> String {
    let s = sweep(app);
    let fig = match app {
        "MaxFlops" => "Fig. 4",
        "CoMD" => "Fig. 5",
        "LULESH" => "Fig. 6",
        _ => "Fig. 4-6 (extra)",
    };
    format!(
        "{fig}: {} performance vs bandwidth and compute\n\n{}\n{}",
        s.app,
        render_panel("(a) sweeping CU frequency at 320 CUs", &s.by_frequency),
        render_panel("(b) sweeping CU count at 1000 MHz", &s.by_cu_count),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_first_ratio(points: &[SweepPoint]) -> f64 {
        points.last().unwrap().normalized_perf / points.first().unwrap().normalized_perf
    }

    #[test]
    fn fig4_maxflops_curves_overlap_across_bandwidths() {
        let s = sweep("MaxFlops");
        // At the same frequency, all bandwidth series give the same perf.
        let at_1tb = &s.by_frequency[0].1;
        let at_7tb = &s.by_frequency[5].1;
        for (a, b) in at_1tb.iter().zip(at_7tb) {
            assert!((a.normalized_perf - b.normalized_perf).abs() < 0.02);
        }
        // And frequency scaling is linear (2.5x from 600 to 1500 MHz).
        assert!((last_first_ratio(at_1tb) - 2.5).abs() < 0.05);
    }

    #[test]
    fn fig5_comd_gains_more_from_compute_on_high_bandwidth() {
        let s = sweep("CoMD");
        let lo = last_first_ratio(&s.by_frequency[0].1); // 1 TB/s
        let hi = last_first_ratio(&s.by_frequency[5].1); // 7 TB/s
        assert!(hi > lo, "lo {lo}, hi {hi}");
    }

    #[test]
    fn fig6_lulesh_declines_on_the_low_bandwidth_curve() {
        let s = sweep("LULESH");
        let curve = &s.by_frequency[0].1; // 1 TB/s
        let peak = curve
            .iter()
            .map(|p| p.normalized_perf)
            .fold(f64::MIN, f64::max);
        let last = curve.last().unwrap().normalized_perf;
        assert!(last < peak, "no decline: peak {peak}, last {last}");
    }

    #[test]
    fn normalization_hits_one_at_the_best_mean_point() {
        let mean = best_mean();
        let s = sweep("CoMD");
        // The by-cu panel at the mean's bandwidth and 1000 MHz contains a
        // point close to the mean config; its normalized perf is ~1 when
        // the mean clock is 1000 MHz, and within a sane band otherwise.
        let mean_bw = mean.bandwidth.terabytes_per_sec();
        let series = s
            .by_cu_count
            .iter()
            .find(|(t, _)| (*t - mean_bw).abs() < 1e-9);
        if let Some((_, points)) = series {
            assert!(points
                .iter()
                .any(|p| (p.normalized_perf - 1.0).abs() < 0.25));
        }
    }

    #[test]
    fn output_mentions_both_panels() {
        let out = run("MaxFlops");
        assert!(out.contains("(a) sweeping CU frequency"));
        assert!(out.contains("(b) sweeping CU count"));
    }
}

//! Cross-validation of the analytic model against the cycle-approximate
//! wavefront timing simulator (the paper's "use gem5-APU to adjust the
//! high-level simulation" step, Section III).
//!
//! For every workload profile we synthesize wavefront programs, run them
//! on one timing-simulated CU with a bandwidth share matching the baseline
//! configuration, and compare the achieved compute efficiency against the
//! analytic model's prediction. The two views are built from the same
//! profile parameters through entirely different mechanisms, so agreement
//! in *ordering* (and rough magnitude) is real evidence the analytic
//! shortcuts are sound.

use ena_core::perf::PerfModel;
use ena_gpu::backend::{FixedLatency, HbmBackend};
use ena_gpu::sim::{CuConfig, GpuSim};
use ena_gpu::synth::wavefronts_for;
use ena_model::config::EhpConfig;
use ena_workloads::paper_profiles;

use crate::TextTable;

/// One workload's pair of efficiency estimates.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationRow {
    /// Application name.
    pub app: String,
    /// Analytic model: achieved/peak throughput at the baseline.
    pub analytic_efficiency: f64,
    /// Timing simulation: achieved/peak FLOPs per cycle on one CU.
    pub simulated_efficiency: f64,
    /// Timing simulation over the banked-HBM backend (row conflicts and
    /// bank queueing included).
    pub simulated_hbm_efficiency: f64,
}

/// Computes the validation rows.
pub fn rows() -> Vec<ValidationRow> {
    let config = EhpConfig::paper_baseline();
    let peak = config.gpu.peak_throughput().value();
    let analytic = PerfModel::default();

    // Per-CU bandwidth share of the baseline: 3 TB/s over 320 CUs at
    // 1 GHz is ~9.4 B/cycle, i.e. one 64 B line every ~7 cycles.
    let cycles_per_request = 7;
    let hbm_latency = 170;

    paper_profiles()
        .iter()
        .map(|p| {
            let analytic_eff = analytic.evaluate(&config, p, 0.15).throughput.value() / peak;

            let wavefronts = wavefronts_for(p, 24, 0xABCD);
            let mut memory = FixedLatency::new(hbm_latency, cycles_per_request);
            let stats = GpuSim::new(CuConfig::default(), &mut memory).run(wavefronts.clone());
            // One CU peaks at 64 DP FLOPs per cycle.
            let simulated_eff = stats.flops_per_cycle() / 64.0;

            let mut banked = HbmBackend::new(8);
            let hbm_stats = GpuSim::new(CuConfig::default(), &mut banked).run(wavefronts);
            let simulated_hbm_eff = hbm_stats.flops_per_cycle() / 64.0;

            ValidationRow {
                app: p.name.clone(),
                analytic_efficiency: analytic_eff,
                simulated_efficiency: simulated_eff,
                simulated_hbm_efficiency: simulated_hbm_eff,
            }
        })
        .collect()
}

/// Spearman-style rank agreement between the two views (1.0 = identical
/// ordering).
pub fn rank_agreement(rows: &[ValidationRow]) -> f64 {
    let rank = |key: &dyn Fn(&ValidationRow) -> f64| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.sort_by(|&a, &b| key(&rows[a]).partial_cmp(&key(&rows[b])).expect("finite"));
        let mut ranks = vec![0usize; rows.len()];
        for (r, &i) in idx.iter().enumerate() {
            ranks[i] = r;
        }
        ranks
    };
    let ra = rank(&|r: &ValidationRow| r.analytic_efficiency);
    let rs = rank(&|r: &ValidationRow| r.simulated_efficiency);
    let n = rows.len() as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rs)
        .map(|(&a, &b)| ((a as f64) - (b as f64)).powi(2))
        .sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

/// Regenerates the validation report.
pub fn run() -> String {
    let rs = rows();
    let mut t = TextTable::new([
        "app",
        "analytic eff.",
        "timing-sim eff.",
        "timing-sim eff. (banked HBM)",
    ]);
    for r in &rs {
        t.row([
            r.app.clone(),
            format!("{:.3}", r.analytic_efficiency),
            format!("{:.3}", r.simulated_efficiency),
            format!("{:.3}", r.simulated_hbm_efficiency),
        ]);
    }
    format!(
        "Validation: analytic model vs wavefront timing simulation\n\
         (compute efficiency = achieved/peak DP throughput at the baseline)\n\n{}\n\
         rank agreement (Spearman): {:.2}\n",
        t.render(),
        rank_agreement(&rs)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_two_views_rank_workloads_consistently() {
        let rs = rows();
        let rho = rank_agreement(&rs);
        assert!(rho > 0.7, "rank agreement {rho}:\n{rs:#?}");
    }

    #[test]
    fn maxflops_is_near_peak_in_both_views() {
        let rs = rows();
        let mf = rs.iter().find(|r| r.app == "MaxFlops").unwrap();
        assert!(mf.analytic_efficiency > 0.8, "{mf:?}");
        assert!(mf.simulated_efficiency > 0.5, "{mf:?}");
    }

    #[test]
    fn memory_intensive_apps_are_far_from_peak_in_both_views() {
        let rs = rows();
        for name in ["XSBench", "LULESH"] {
            let r = rs.iter().find(|r| r.app == name).unwrap();
            assert!(r.analytic_efficiency < 0.3, "{r:?}");
            assert!(r.simulated_efficiency < 0.4, "{r:?}");
        }
    }

    #[test]
    fn the_banked_backend_orders_apps_like_the_idealized_pipe() {
        // Bank conflicts and row misses move the magnitudes, not the
        // ordering: MaxFlops on top, XSBench at the bottom.
        let rs = rows();
        let eff = |name: &str| {
            rs.iter()
                .find(|r| r.app == name)
                .unwrap()
                .simulated_hbm_efficiency
        };
        assert!(eff("MaxFlops") > 0.5);
        assert!(eff("XSBench") < eff("MaxFlops"));
        assert!(eff("XSBench") < eff("CoMD"));
    }
}

//! Fig. 10: peak in-package 3D-DRAM temperature per application, at the
//! best-mean configuration and at each application's oracle configuration.

use ena_core::node::EvalOptions;
use ena_model::units::Celsius;
use ena_thermal::DRAM_TEMP_LIMIT;
use ena_workloads::paper_profiles;

use super::context::{explore_baseline, simulator, DSE_MISS_FRACTION};
use crate::TextTable;

/// One application's thermal result.
#[derive(Clone, Debug)]
pub struct ThermalRow {
    /// Application name.
    pub app: String,
    /// Peak DRAM temperature at the best-mean configuration.
    pub best_mean: Celsius,
    /// Peak DRAM temperature at the app's oracle configuration.
    pub best_per_app: Celsius,
    /// Oracle configuration label.
    pub per_app_config: String,
}

/// Computes the per-app thermal rows.
pub fn rows() -> Vec<ThermalRow> {
    let sim = simulator();
    let dse = explore_baseline();
    let mean_config = dse
        .best_mean
        .try_to_config()
        .expect("swept point is buildable");
    let options = EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);

    paper_profiles()
        .iter()
        .map(|p| {
            let mean_eval = sim.evaluate(&mean_config, p, &options);
            let mean_t = sim
                .thermal(&mean_config, &mean_eval)
                .expect("thermal solve converges");

            let app_best = dse
                .per_app
                .iter()
                .find(|a| a.app == p.name)
                .expect("every app explored");
            let app_config = app_best
                .point
                .try_to_config()
                .expect("swept point is buildable");
            let app_eval = sim.evaluate(&app_config, p, &options);
            let app_t = sim
                .thermal(&app_config, &app_eval)
                .expect("thermal solve converges");

            ThermalRow {
                app: p.name.clone(),
                best_mean: mean_t.peak_dram(),
                best_per_app: app_t.peak_dram(),
                per_app_config: app_best.point.label(),
            }
        })
        .collect()
}

/// Regenerates Fig. 10.
pub fn run() -> String {
    let mut t = TextTable::new([
        "app",
        "best-mean config (degC)",
        "best-per-app config (degC)",
        "per-app config",
    ]);
    for r in rows() {
        t.row([
            r.app.clone(),
            format!("{:.1}", r.best_mean.value()),
            format!("{:.1}", r.best_per_app.value()),
            r.per_app_config.clone(),
        ]);
    }
    format!(
        "Fig. 10: peak in-package 3D-DRAM temperature (limit {} degC, ambient 50 degC)\n\n{}",
        DRAM_TEMP_LIMIT.value(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_temperatures_respect_the_dram_limit() {
        // Paper Finding 1: every kernel stays below 85 degC in both
        // configurations.
        for r in rows() {
            assert!(
                r.best_mean.value() < DRAM_TEMP_LIMIT.value(),
                "{}: mean {:.1}",
                r.app,
                r.best_mean.value()
            );
            assert!(
                r.best_per_app.value() < DRAM_TEMP_LIMIT.value(),
                "{}: per-app {:.1}",
                r.app,
                r.best_per_app.value()
            );
        }
    }

    #[test]
    fn temperatures_are_meaningfully_above_ambient() {
        for r in rows() {
            assert!(
                r.best_mean.value() > 55.0,
                "{}: {:.1}",
                r.app,
                r.best_mean.value()
            );
        }
    }

    #[test]
    fn some_oracle_configs_change_the_temperature() {
        // Paper Finding 2: per-app configs usually run hotter, but some
        // (SNAP, HPGMG) run cooler because power shifts from CUs to DRAM.
        let rs = rows();
        assert!(rs
            .iter()
            .any(|r| (r.best_per_app.value() - r.best_mean.value()).abs() > 0.5));
    }
}

//! Fig. 9: impact of the external-memory configuration on total ENA power.
//!
//! Compares the DRAM-only external memory against the hybrid DRAM+NVM
//! configuration (half the capacity on NVM) for every workload, broken
//! down into the paper's categories: SerDes (S/D), external memory (S/D),
//! CUs (D), and Other. This is the capacity-limited regime, so each
//! workload's own external-traffic fraction (46-89 %) drives the traffic.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_model::config::{EhpConfig, ExternalMemoryConfig};
use ena_model::units::Gigabytes;
use ena_power::breakdown::PowerBreakdown;
use ena_workloads::paper_profiles;

use crate::TextTable;

/// External-memory variants compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExternalVariant {
    /// All external capacity on DRAM modules.
    DramOnly,
    /// Half the capacity on NVM (Section V-C footnote 6).
    Hybrid,
}

impl ExternalVariant {
    fn label(self) -> &'static str {
        match self {
            ExternalVariant::DramOnly => "3D DRAM only",
            ExternalVariant::Hybrid => "3D DRAM + NVM",
        }
    }
}

/// Power breakdown per app per variant.
pub fn breakdowns() -> Vec<(String, ExternalVariant, PowerBreakdown)> {
    let sim = NodeSimulator::new();
    let mut out = Vec::new();
    for variant in [ExternalVariant::DramOnly, ExternalVariant::Hybrid] {
        let mut config = EhpConfig::paper_baseline();
        config.external = match variant {
            ExternalVariant::DramOnly => ExternalMemoryConfig::dram_only(4, Gigabytes::new(768.0)),
            ExternalVariant::Hybrid => ExternalMemoryConfig::hybrid(4, Gigabytes::new(768.0)),
        };
        for p in &paper_profiles() {
            // Capacity-limited regime: the profile's own miss fraction.
            let eval = sim.evaluate(&config, p, &EvalOptions::default());
            out.push((p.name.clone(), variant, eval.power));
        }
    }
    out
}

/// Regenerates Fig. 9.
pub fn run() -> String {
    let mut t = TextTable::new([
        "variant",
        "app",
        "SerDes (S)",
        "Ext mem (S)",
        "SerDes (D)",
        "Ext mem (D)",
        "CUs (D)",
        "Other",
        "Total",
    ]);
    for (app, variant, b) in breakdowns() {
        let cats = b.fig9_categories();
        let mut row = vec![variant.label().to_string(), app];
        row.extend(cats.iter().map(|(_, w)| format!("{:.1}", w.value())));
        row.push(format!("{:.1}", b.total().value()));
        t.row(row);
    }
    format!(
        "Fig. 9: impact of external-memory configuration on ENA power (W)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_app(variant: ExternalVariant) -> std::collections::BTreeMap<String, PowerBreakdown> {
        breakdowns()
            .into_iter()
            .filter(|(_, v, _)| *v == variant)
            .map(|(app, _, b)| (app, b))
            .collect()
    }

    #[test]
    fn external_power_spans_the_papers_band_for_dram_only() {
        // Paper Finding 1: external power 40-70 W across kernels; DRAM-only
        // static is ~27 W modules + ~10 W SerDes.
        for (app, b) in by_app(ExternalVariant::DramOnly) {
            let ext = b.external_total().value();
            assert!((30.0..115.0).contains(&ext), "{app}: external {ext:.1} W");
        }
    }

    #[test]
    fn hybrid_halves_static_but_punishes_memory_intensive_apps() {
        let dram = by_app(ExternalVariant::DramOnly);
        let hybrid = by_app(ExternalVariant::Hybrid);

        // Static external power drops by about half (Finding 2).
        let stat = |b: &PowerBreakdown| {
            (b.get(ena_power::Component::ExtStatic) + b.get(ena_power::Component::SerdesStatic))
                .value()
        };
        let ratio = stat(&hybrid["MaxFlops"]) / stat(&dram["MaxFlops"]);
        assert!((0.35..0.7).contains(&ratio), "static ratio {ratio}");

        // Apps that barely touch external memory get cheaper overall...
        assert!(hybrid["MaxFlops"].total().value() < dram["MaxFlops"].total().value());

        // ...while apps with heavy external traffic get substantially more
        // expensive (paper: up to ~2x for three applications; see
        // EXPERIMENTS.md for where our ratios land).
        let count_worse = ["LULESH", "MiniAMR", "SNAP", "HPGMG", "CoMD", "CoMD-LJ"]
            .iter()
            .filter(|&&a| hybrid[a].total().value() > dram[a].total().value() * 1.15)
            .count();
        assert!(count_worse >= 3, "only {count_worse} apps grew >15 %");
        let worst = ["LULESH", "MiniAMR", "XSBench", "SNAP", "HPGMG"]
            .iter()
            .map(|&a| hybrid[a].total().value() / dram[a].total().value())
            .fold(f64::MIN, f64::max);
        assert!(worst > 1.25, "worst growth ratio {worst}");
    }

    #[test]
    fn report_contains_both_variants() {
        let out = run();
        assert!(out.contains("3D DRAM only"));
        assert!(out.contains("3D DRAM + NVM"));
    }
}

//! Fig. 11: heat map of the bottom-most in-package DRAM die for SNAP,
//! best-mean configuration vs SNAP's own oracle configuration.

use ena_core::node::EvalOptions;
use ena_workloads::profile_for;

use super::context::{explore_baseline, simulator, DSE_MISS_FRACTION};

/// The two heat maps plus their labels and peak temperatures.
pub struct HeatMaps {
    /// (config label, rendered ASCII map, peak DRAM temperature in degC).
    pub best_mean: (String, String, f64),
    /// Same for SNAP's oracle configuration.
    pub per_app: (String, String, f64),
}

/// Computes the SNAP heat maps.
pub fn heat_maps() -> HeatMaps {
    let sim = simulator();
    let dse = explore_baseline();
    let snap = profile_for("SNAP").expect("SNAP is in the suite");
    let options = EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);

    let solve = |point: ena_core::dse::ConfigPoint| {
        let config = point.try_to_config().expect("swept point is buildable");
        let eval = sim.evaluate(&config, &snap, &options);
        let t = sim
            .thermal(&config, &eval)
            .expect("thermal solve converges");
        (point.label(), t.render_bottom_dram(), t.peak_dram().value())
    };

    let snap_best = dse
        .per_app
        .iter()
        .find(|a| a.app == "SNAP")
        .expect("SNAP explored")
        .point;

    HeatMaps {
        best_mean: solve(dse.best_mean),
        per_app: solve(snap_best),
    }
}

/// Regenerates Fig. 11.
pub fn run() -> String {
    let maps = heat_maps();
    format!(
        "Fig. 11: bottom in-package DRAM die heat map for SNAP\n\
         (' ' coolest ... '@' hottest; hot columns = GPU shader engines below)\n\n\
         Best-mean configuration ({}), peak {:.1} degC:\n{}\n\
         Best SNAP-specific configuration ({}), peak {:.1} degC:\n{}",
        maps.best_mean.0,
        maps.best_mean.2,
        maps.best_mean.1,
        maps.per_app.0,
        maps.per_app.2,
        maps.per_app.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_maps_render_with_structure() {
        let maps = heat_maps();
        for (label, art, peak) in [&maps.best_mean, &maps.per_app] {
            assert_eq!(art.lines().count(), 16, "{label}");
            assert!(art.contains('@'), "{label} has no hottest cell");
            assert!(*peak > 50.0 && *peak < 85.0, "{label}: peak {peak}");
        }
    }

    #[test]
    fn the_two_configurations_differ() {
        let maps = heat_maps();
        assert_ne!(maps.best_mean.0, maps.per_app.0);
    }
}

//! Fig. 13: energy-efficiency improvement from the power optimizations.
//!
//! The optimizations free power headroom, letting the design-space
//! exploration pick a higher-performing best-mean configuration (the paper
//! moves from 320/1000/3 to 288/1100/3). This experiment compares
//! performance-per-watt of the optimized best-mean configuration against
//! the unoptimized one, per application.

use ena_core::node::EvalOptions;
use ena_power::opts::PowerOptimization;
use ena_workloads::paper_profiles;

use super::context::{explore_baseline, explore_optimized, simulator, DSE_MISS_FRACTION};
use crate::TextTable;

/// Result of the comparison.
pub struct EfficiencyGains {
    /// Unoptimized best-mean configuration label.
    pub baseline_config: String,
    /// Optimized best-mean configuration label.
    pub optimized_config: String,
    /// Per-app perf-per-watt improvement (%).
    pub per_app_pct: Vec<(String, f64)>,
}

/// Computes the per-app efficiency gains.
pub fn gains() -> EfficiencyGains {
    let sim = simulator();
    let base_point = explore_baseline().best_mean;
    let opt_point = explore_optimized().best_mean;
    let base_config = base_point
        .try_to_config()
        .expect("swept point is buildable");
    let opt_config = opt_point.try_to_config().expect("swept point is buildable");

    let base_options = EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);
    let mut opt_options = EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);
    opt_options.optimizations = PowerOptimization::ALL.to_vec();

    let per_app_pct = paper_profiles()
        .iter()
        .map(|p| {
            let base = sim.evaluate(&base_config, p, &base_options).efficiency();
            let opt = sim.evaluate(&opt_config, p, &opt_options).efficiency();
            (p.name.clone(), 100.0 * (opt / base - 1.0))
        })
        .collect();

    EfficiencyGains {
        baseline_config: base_point.label(),
        optimized_config: opt_point.label(),
        per_app_pct,
    }
}

/// Regenerates Fig. 13.
pub fn run() -> String {
    let g = gains();
    let mut t = TextTable::new(["app", "perf-per-watt improvement %"]);
    for (app, pct) in &g.per_app_pct {
        t.row([app.clone(), format!("{pct:.1}")]);
    }
    format!(
        "Fig. 13: energy-efficiency benefit from optimizations\n\
         baseline best-mean: {} | optimized best-mean: {}\n\n{}",
        g.baseline_config,
        g.optimized_config,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_gains_efficiency() {
        // Paper Fig. 13: improvements roughly 5-45 % across apps.
        let g = gains();
        for (app, pct) in &g.per_app_pct {
            assert!(*pct > 0.0, "{app}: {pct}");
            assert!(*pct < 80.0, "{app}: implausible {pct}");
        }
        assert!(
            g.per_app_pct.iter().any(|(_, pct)| *pct > 10.0),
            "no double-digit gains"
        );
    }

    #[test]
    fn optimizations_move_the_best_mean_point() {
        let g = gains();
        // The optimized exploration should find a different (more capable)
        // configuration, as in the paper's 320/1000/3 -> 288/1100/3 shift.
        assert_ne!(g.baseline_config, g.optimized_config);
    }
}

//! Fig. 12: node-power savings from each Section V-E optimization,
//! individually and combined, per application.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_power::opts::PowerOptimization;
use ena_workloads::paper_profiles;

use super::context::{best_mean, DSE_MISS_FRACTION};
use crate::TextTable;

/// Savings per app: `(app, [per-optimization %...], all-combined %)`.
pub fn savings() -> Vec<(String, Vec<f64>, f64)> {
    let sim = NodeSimulator::new();
    let config = best_mean()
        .try_to_config()
        .expect("swept point is buildable");
    paper_profiles()
        .iter()
        .map(|p| {
            let base = sim
                .evaluate(
                    &config,
                    p,
                    &EvalOptions::with_miss_fraction(DSE_MISS_FRACTION),
                )
                .node_power()
                .value();
            let with = |opts: &[PowerOptimization]| {
                let mut options = EvalOptions::with_miss_fraction(DSE_MISS_FRACTION);
                options.optimizations = opts.to_vec();
                let p_opt = sim.evaluate(&config, p, &options).node_power().value();
                100.0 * (1.0 - p_opt / base)
            };
            let per: Vec<f64> = PowerOptimization::ALL.iter().map(|o| with(&[*o])).collect();
            let all = with(&PowerOptimization::ALL);
            (p.name.clone(), per, all)
        })
        .collect()
}

/// Regenerates Fig. 12.
pub fn run() -> String {
    let mut header = vec!["app".to_string()];
    header.extend(PowerOptimization::ALL.iter().map(|o| o.label().to_string()));
    header.push("All".into());
    let mut t = TextTable::new(header);
    for (app, per, all) in savings() {
        let mut row = vec![app];
        row.extend(per.iter().map(|v| format!("{v:.1}%")));
        row.push(format!("{all:.1}%"));
        t.row(row);
    }
    format!(
        "Fig. 12: power savings from optimizations (relative to no optimization)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_savings_span_the_papers_band() {
        // Paper: 13-27 % across applications with all techniques.
        let all: Vec<f64> = savings().iter().map(|(_, _, a)| *a).collect();
        let min = all.iter().copied().fold(f64::MAX, f64::min);
        let max = all.iter().copied().fold(f64::MIN, f64::max);
        assert!(min > 9.0, "min combined {min}");
        assert!(max < 30.0, "max combined {max}");
        assert!(max - min > 2.0, "no app-to-app variation: {all:?}");
    }

    #[test]
    fn ntc_dominates_the_individual_techniques() {
        // Paper averages: NTC 14 % >> async CUs 4.3 % > routers 3.0 % >
        // links 1.6 % ~ compression 1.7 %.
        let rows = savings();
        let n = rows.len() as f64;
        let avg = |i: usize| rows.iter().map(|(_, per, _)| per[i]).sum::<f64>() / n;
        let ntc = avg(0);
        assert!((7.0..20.0).contains(&ntc), "NTC avg {ntc}");
        for i in 1..5 {
            assert!(ntc > avg(i), "NTC should dominate technique {i}");
        }
        let async_cus = avg(1);
        assert!((1.2..7.0).contains(&async_cus), "async CUs avg {async_cus}");
    }

    #[test]
    fn memory_intensive_apps_benefit_most_from_compression() {
        // Paper: LULESH benefits the most from compression.
        let rows = savings();
        let comp = |name: &str| {
            rows.iter()
                .find(|(app, _, _)| app == name)
                .map(|(_, per, _)| per[4])
                .unwrap()
        };
        assert!(comp("LULESH") > comp("MaxFlops"));
        assert!(comp("LULESH") > comp("CoMD"));
    }
}

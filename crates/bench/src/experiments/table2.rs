//! Table II: per-application oracle configurations and their benefit over
//! the best-mean configuration, without and with power optimizations.

use super::context::{explore_baseline, explore_optimized};
use crate::TextTable;

/// One Table II row.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Application name.
    pub app: String,
    /// Oracle configuration (CUs / MHz / TB/s), without optimizations.
    pub config: String,
    /// Benefit over best-mean without power optimizations (%).
    pub benefit_pct: f64,
    /// Benefit over best-mean with power optimizations (%).
    pub benefit_with_opts_pct: f64,
}

/// Computes the table.
pub fn rows() -> Vec<TableRow> {
    let base = explore_baseline();
    let opt = explore_optimized();
    base.per_app
        .iter()
        .map(|a| {
            let with_opts = opt
                .per_app
                .iter()
                .find(|o| o.app == a.app)
                .expect("same suite explored");
            TableRow {
                app: a.app.clone(),
                config: a.point.label(),
                benefit_pct: a.benefit_over_mean_pct,
                benefit_with_opts_pct: with_opts.benefit_over_mean_pct,
            }
        })
        .collect()
}

/// Regenerates Table II.
pub fn run() -> String {
    let base = explore_baseline();
    let mut t = TextTable::new([
        "Application",
        "Best app-specific config (CUs/MHz/TB/s)",
        "benefit w/o power opt (%)",
        "benefit w/ power opt (%)",
    ]);
    for r in rows() {
        t.row([
            r.app.clone(),
            r.config.clone(),
            format!("{:.1}", r.benefit_pct),
            format!("{:.1}", r.benefit_with_opts_pct),
        ]);
    }
    format!(
        "Table II: performance benefit of dynamic resource reconfiguration\n\
         (best-mean configuration: {})\n\n{}",
        base.best_mean.label(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_configs_never_lose_to_the_mean() {
        for r in rows() {
            assert!(r.benefit_pct >= -1e-9, "{}: {}", r.app, r.benefit_pct);
        }
    }

    #[test]
    fn benefits_reach_double_digits_like_the_paper() {
        // Paper: 10.7-47.3 % without opts, up to 54.3 % with.
        let rs = rows();
        let max_base = rs.iter().map(|r| r.benefit_pct).fold(f64::MIN, f64::max);
        assert!((10.0..70.0).contains(&max_base), "max benefit {max_base}");
        let max_opt = rs
            .iter()
            .map(|r| r.benefit_with_opts_pct)
            .fold(f64::MIN, f64::max);
        assert!(max_opt > 10.0, "max with opts {max_opt}");
    }

    #[test]
    fn every_app_appears_once() {
        let rs = rows();
        assert_eq!(rs.len(), 8);
        let mut names: Vec<&str> = rs.iter().map(|r| r.app.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}

//! Table I: application descriptions and categories, with measured
//! characteristics from the executable mini-kernels appended.

use ena_workloads::app::RunConfig;
use ena_workloads::apps::all_apps;
use ena_workloads::Characterization;

use crate::TextTable;

/// Regenerates Table I, extended with measured per-kernel statistics.
pub fn run() -> String {
    let mut t = TextTable::new([
        "Category",
        "Application",
        "Description",
        "measured flop/byte",
        "write frac",
        "seq frac",
    ]);
    let cfg = RunConfig::small();
    for app in all_apps() {
        let c = Characterization::measure(app.as_ref(), &cfg);
        t.row([
            app.category().to_string(),
            app.name().to_string(),
            app.description().to_string(),
            format!("{:.3}", c.ops_per_byte),
            format!("{:.2}", c.write_fraction),
            format!("{:.2}", c.sequential_fraction),
        ]);
    }
    format!("Table I: application descriptions\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_lists_all_eight_workloads() {
        let out = super::run();
        for name in [
            "MaxFlops", "CoMD", "CoMD-LJ", "HPGMG", "LULESH", "MiniAMR", "XSBench", "SNAP",
        ] {
            assert!(out.contains(name), "missing {name}:\n{out}");
        }
        assert!(out.contains("memory-intensive"));
        assert!(out.contains("balanced"));
    }
}

//! Regenerates the paper's tables and figures.
//!
//! Usage: `figures <experiment>|all [--out DIR] [--list]` where experiment
//! is one of table1, fig4..fig14, table2, ablations, validation,
//! extensions, substrates. With `--out DIR` each report is also written to
//! `DIR/<experiment>.txt`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn emit(name: &str, out_dir: Option<&PathBuf>, body: &str) -> std::io::Result<()> {
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.txt")), body)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let names = ena_bench::experiments::ALL_EXPERIMENTS;

    let out_dir = match args.iter().position(|a| a == "--out") {
        Some(i) if i + 1 < args.len() => {
            let dir = PathBuf::from(args.remove(i + 1));
            args.remove(i);
            Some(dir)
        }
        Some(_) => {
            eprintln!("--out requires a directory");
            return ExitCode::FAILURE;
        }
        None => None,
    };

    match args.first().map(String::as_str) {
        Some("--list") => {
            for n in names {
                println!("{n}");
            }
            ExitCode::SUCCESS
        }
        Some("all") => {
            for n in names {
                println!("================ {n} ================");
                let out = ena_bench::experiments::run(n).expect("known experiment");
                println!("{out}");
                if let Err(e) = emit(n, out_dir.as_ref(), &out) {
                    eprintln!("failed writing {n}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some(name) => match ena_bench::experiments::run(name) {
            Some(out) => {
                println!("{out}");
                if let Err(e) = emit(name, out_dir.as_ref(), &out) {
                    eprintln!("failed writing {name}: {e}");
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{name}'; use --list");
                ExitCode::FAILURE
            }
        },
        None => {
            eprintln!("usage: figures <experiment>|all [--out DIR] | --list");
            eprintln!("experiments: {}", names.join(", "));
            ExitCode::FAILURE
        }
    }
}

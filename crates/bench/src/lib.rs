//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each submodule of [`experiments`] reproduces one evaluation artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table I — application descriptions |
//! | [`experiments::fig4_6`] | Figs. 4-6 — per-category scaling sweeps |
//! | [`experiments::fig7`] | Fig. 7 — chiplet vs monolithic |
//! | [`experiments::fig8`] | Fig. 8 — in-package miss-rate sensitivity |
//! | [`experiments::fig9`] | Fig. 9 — external-memory power breakdown |
//! | [`experiments::fig10`] | Fig. 10 — peak in-package DRAM temperature |
//! | [`experiments::fig11`] | Fig. 11 — bottom DRAM die heat map (SNAP) |
//! | [`experiments::fig12`] | Fig. 12 — power-optimization savings |
//! | [`experiments::fig13`] | Fig. 13 — perf-per-watt improvement |
//! | [`experiments::fig14`] | Fig. 14 — MaxFlops exaflops and megawatts |
//! | [`experiments::table2`] | Table II — per-app oracle configurations |
//! | [`experiments::ablations`] | beyond-paper design-knob ablations |
//!
//! The `figures` binary dispatches to these: `figures fig8`, `figures all`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

/// A minimal fixed-width text table builder for experiment output.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = fmt_line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_line(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(["app", "value"]);
        t.row(["LULESH", "1.0"]);
        t.row(["X", "12345.6"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("LULESH"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_are_rejected() {
        TextTable::new(["a", "b"]).row(["only-one"]);
    }
}

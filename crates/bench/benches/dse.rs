//! Benchmarks the design-space exploration (Section V/VI's engine).

use criterion::{criterion_group, criterion_main, Criterion};
use ena_core::dse::{DesignSpace, Explorer};
use ena_workloads::paper_profiles;

fn bench_dse(c: &mut Criterion) {
    let profiles = paper_profiles();
    let mut group = c.benchmark_group("dse");
    group.sample_size(10);
    group.bench_function("coarse_explore_490_points", |b| {
        b.iter(|| std::hint::black_box(Explorer::default().explore(&DesignSpace::coarse(), &profiles)))
    });
    group.finish();
}

criterion_group!(benches, bench_dse);
criterion_main!(benches);

//! Benchmarks the design-space exploration (Section V/VI's engine).
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_core::dse::{DesignSpace, Explorer};
use ena_testkit::timing::Harness;
use ena_workloads::paper_profiles;

fn main() {
    let profiles = paper_profiles();
    let mut h = Harness::new("dse");
    h.sample_size(10);
    h.bench("coarse_explore_490_points", || {
        std::hint::black_box(Explorer::default().explore(&DesignSpace::coarse(), &profiles))
    });
}

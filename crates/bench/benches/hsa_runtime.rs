//! Benchmarks the HSA runtime scheduler and the CPU interval models.

use criterion::{criterion_group, criterion_main, Criterion};
use ena_cpu::core::CoreModel;
use ena_cpu::program::CpuProgram;
use ena_cpu::window::{simulate, WindowConfig};
use ena_hsa::runtime::{Runtime, RuntimeConfig};
use ena_hsa::task::{TaskCost, TaskGraph};
use ena_model::units::Megahertz;

fn wide_graph(tasks: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let pre = g.add("pre", TaskCost::cpu(5.0), &[]).unwrap();
    for i in 0..tasks {
        g.add(format!("k{i}"), TaskCost::either(20.0, 10.0), &[pre])
            .unwrap();
    }
    g
}

fn bench(c: &mut Criterion) {
    let g = wide_graph(500);
    c.bench_function("hsa/schedule_500_tasks", |b| {
        b.iter(|| std::hint::black_box(Runtime::new(RuntimeConfig::hsa()).execute(&g)))
    });

    let program = CpuProgram::synthesize(1_000_000, 10.0, 2);
    let core = CoreModel::default();
    c.bench_function("cpu/leading_loads_analytic", |b| {
        b.iter(|| std::hint::black_box(core.run(&program, Megahertz::new(2500.0))))
    });

    let small = CpuProgram::synthesize(100_000, 10.0, 2);
    c.bench_function("cpu/window_sim_100k_instructions", |b| {
        b.iter(|| std::hint::black_box(simulate(&WindowConfig::default(), &small)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Benchmarks the HSA runtime scheduler and the CPU interval models.
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_cpu::core::CoreModel;
use ena_cpu::program::CpuProgram;
use ena_cpu::window::{simulate, WindowConfig};
use ena_hsa::runtime::{Runtime, RuntimeConfig};
use ena_hsa::task::{TaskCost, TaskGraph};
use ena_model::units::Megahertz;
use ena_testkit::timing::Harness;

fn wide_graph(tasks: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let pre = g.add("pre", TaskCost::cpu(5.0), &[]).unwrap();
    for i in 0..tasks {
        g.add(format!("k{i}"), TaskCost::either(20.0, 10.0), &[pre])
            .unwrap();
    }
    g
}

fn main() {
    let mut h = Harness::new("substrates");
    let g = wide_graph(500);
    h.bench("hsa/schedule_500_tasks", || {
        std::hint::black_box(Runtime::new(RuntimeConfig::hsa()).execute(&g))
    });

    let program = CpuProgram::synthesize(1_000_000, 10.0, 2);
    let core = CoreModel::default();
    h.bench("cpu/leading_loads_analytic", || {
        std::hint::black_box(core.run(&program, Megahertz::new(2500.0)))
    });

    let small = CpuProgram::synthesize(100_000, 10.0, 2);
    h.bench("cpu/window_sim_100k_instructions", || {
        std::hint::black_box(simulate(&WindowConfig::default(), &small))
    });
}

//! Benchmarks the wavefront timing simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use ena_gpu::backend::{FixedLatency, HbmBackend};
use ena_gpu::sim::{CuConfig, GpuSim};
use ena_gpu::synth::wavefronts_for;
use ena_workloads::profile_for;

fn bench_gpu(c: &mut Criterion) {
    let profile = profile_for("LULESH").unwrap();
    let wavefronts = wavefronts_for(&profile, 24, 7);

    c.bench_function("gpu_timing/fixed_latency", |b| {
        b.iter(|| {
            let mut mem = FixedLatency::new(170, 7);
            std::hint::black_box(GpuSim::new(CuConfig::default(), &mut mem).run(wavefronts.clone()))
        })
    });

    c.bench_function("gpu_timing/hbm_backend", |b| {
        b.iter(|| {
            let mut mem = HbmBackend::new(8);
            std::hint::black_box(GpuSim::new(CuConfig::default(), &mut mem).run(wavefronts.clone()))
        })
    });
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);

//! Benchmarks the wavefront timing simulator.
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_gpu::backend::{FixedLatency, HbmBackend};
use ena_gpu::sim::{CuConfig, GpuSim};
use ena_gpu::synth::wavefronts_for;
use ena_testkit::timing::Harness;
use ena_workloads::profile_for;

fn main() {
    let profile = profile_for("LULESH").unwrap();
    let wavefronts = wavefronts_for(&profile, 24, 7);
    let mut h = Harness::new("gpu_timing");

    h.bench("fixed_latency", || {
        let mut mem = FixedLatency::new(170, 7);
        std::hint::black_box(GpuSim::new(CuConfig::default(), &mut mem).run(wavefronts.clone()))
    });

    h.bench("hbm_backend", || {
        let mut mem = HbmBackend::new(8);
        std::hint::black_box(GpuSim::new(CuConfig::default(), &mut mem).run(wavefronts.clone()))
    });
}

//! Benchmarks the serving layer's hot paths over an in-process pipe —
//! framing plus the sharded store, with the model cost excluded by
//! pre-warming every point: a single warm `EVAL` round trip, a
//! pipelined run of warm `EVAL`s (one write burst, one response burst),
//! and a `STATS` render.
//!
//! Run with `cargo bench -p ena-bench --features timing`. Measurements
//! land machine-readably in `artifacts/BENCH_serve.json` and, when a
//! previous file exists, each median is regression-guarded against it
//! (a > [`GUARD_FACTOR`]x slowdown fails the run; set
//! `ENA_BENCH_NO_GUARD=1` to bypass, e.g. when changing machines).

use ena_core::dse::Explorer;
use ena_serve::{Client, ServeConfig, Server};
use ena_testkit::golden::artifacts_dir;
use ena_testkit::timing::{Harness, Measurement};
use ena_testkit::transport::pair;
use ena_workloads::profile_for;

/// Tolerated median slowdown versus the previous recorded run.
const GUARD_FACTOR: f64 = 4.0;

/// Distinct points pre-warmed into the store and replayed pipelined.
const PIPELINE: usize = 16;

fn write_json(path: &std::path::Path, samples: usize, results: &[&Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"group\": \"serve\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    out.push_str("  \"benches\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            m.label,
            m.median_ns(),
            m.min_ns(),
            m.mean_ns()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_serve.json");
}

/// Pulls `"label": ..., "median_ns": <value>` pairs out of a previous
/// run's JSON without a parser dependency.
fn previous_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"label\": \"").skip(1) {
        let Some(label_end) = chunk.find('"') else {
            continue;
        };
        let Some(at) = chunk.find("\"median_ns\": ") else {
            continue;
        };
        let rest = &chunk[at + "\"median_ns\": ".len()..];
        let value: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.push((chunk[..label_end].to_string(), v));
        }
    }
    out
}

fn main() {
    let profiles = vec![profile_for("CoMD").expect("CoMD is a paper app")];
    let (server, _) =
        Server::new(ServeConfig::new(Explorer::default(), profiles)).expect("memory server");

    let lines: Vec<String> = (0..PIPELINE)
        .map(|i| format!("EVAL {} {} 3", 256 + 32 * (i % 3), 900 + 25 * i))
        .collect();
    let lines: Vec<&str> = lines.iter().map(String::as_str).collect();

    let mut h = Harness::new("serve");
    h.sample_size(20);
    let json_path = artifacts_dir().join("BENCH_serve.json");
    let previous = std::fs::read_to_string(&json_path)
        .map(|t| previous_medians(&t))
        .unwrap_or_default();

    let (hit, pipeline, stats) = std::thread::scope(|s| {
        let server = &server;
        let (client_end, server_end) = pair();
        s.spawn(move || server.handle(server_end));
        let mut client = Client::new(client_end);
        // Fill the store so every benched request is a warm hit: the
        // benches time framing + store, never the model.
        let warm = client.pipeline(&lines).expect("warm fill");
        assert!(warm.iter().all(|r| r.starts_with("OK ")), "warm fill");

        let hit = h
            .bench("serve_eval_warm_hit", || {
                std::hint::black_box(client.request("EVAL 256 900 3").expect("hit"))
            })
            .clone();
        let pipeline = h
            .bench("serve_pipeline_16_warm", || {
                std::hint::black_box(client.pipeline(&lines).expect("warm pipeline"))
            })
            .clone();
        let stats = h
            .bench("serve_stats_roundtrip", || {
                std::hint::black_box(client.request("STATS").expect("stats"))
            })
            .clone();
        // Dropping the client closes the pipe; the handler thread sees
        // a clean EOF and the scope joins it.
        drop(client);
        (hit, pipeline, stats)
    });

    let results = [&hit, &pipeline, &stats];
    write_json(&json_path, 20, &results);
    println!("wrote {}", json_path.display());

    if std::env::var_os("ENA_BENCH_NO_GUARD").is_some() {
        return;
    }
    let mut regressed = false;
    for m in results {
        if let Some((_, old)) = previous.iter().find(|(l, _)| *l == m.label) {
            let ratio = m.median_ns() / old.max(1e-9);
            if ratio > GUARD_FACTOR {
                eprintln!(
                    "REGRESSION: {} median {:.0} ns is {ratio:.1}x the recorded {:.0} ns",
                    m.label,
                    m.median_ns(),
                    old
                );
                regressed = true;
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

//! Benchmarks the transient-fault layer: schedule sampling, the full
//! ECC/retry/rollback campaign, and the Monte Carlo Young/Daly recovery
//! simulation — all on fixed seeds, so run-to-run spread is pure machine
//! noise, not workload variance.
//!
//! Run with `cargo bench -p ena-bench --features timing --bench faults`.
//! The measurements land machine-readably in
//! `artifacts/BENCH_faults.json`; if a previous file exists, each median
//! is regression-guarded against it (a > [`GUARD_FACTOR`]x slowdown
//! fails the run; set `ENA_BENCH_NO_GUARD=1` to bypass, e.g. when
//! changing machines).

use ena_fabric::RecoveryModel;
use ena_faults::{
    run_transient_campaign, TransientCampaignSpec, TransientRates, TransientSchedule,
};
use ena_testkit::golden::artifacts_dir;
use ena_testkit::timing::{Harness, Measurement};

/// Tolerated median slowdown versus the previous recorded run.
const GUARD_FACTOR: f64 = 4.0;

fn write_json(path: &std::path::Path, samples: usize, results: &[&Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"group\": \"faults\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    out.push_str("  \"benches\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            m.label,
            m.median_ns(),
            m.min_ns(),
            m.mean_ns()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_faults.json");
}

/// Pulls `"label": ..., "median_ns": <value>` pairs out of a previous
/// run's JSON without a parser dependency.
fn previous_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"label\": \"").skip(1) {
        let Some(label_end) = chunk.find('"') else {
            continue;
        };
        let Some(at) = chunk.find("\"median_ns\": ") else {
            continue;
        };
        let rest = &chunk[at + "\"median_ns\": ".len()..];
        let value: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.push((chunk[..label_end].to_string(), v));
        }
    }
    out
}

fn main() {
    let mut h = Harness::new("faults");
    h.sample_size(10);

    let rates = TransientRates::standard();
    let spec = TransientCampaignSpec::standard(0xC0FFEE);
    let horizon = spec.horizon_us();
    let recovery = RecoveryModel::new(96.0, 3.0);

    let path = artifacts_dir().join("BENCH_faults.json");
    let previous = std::fs::read_to_string(&path)
        .map(|t| previous_medians(&t))
        .unwrap_or_default();

    let sample = h
        .bench("transient_schedule_sample", || {
            std::hint::black_box(TransientSchedule::sample(0xC0FFEE, rates, horizon).digest())
        })
        .clone();
    let campaign = h
        .bench("transient_campaign", || {
            std::hint::black_box(run_transient_campaign(&spec).makespan_us)
        })
        .clone();
    let daly = h
        .bench("daly_recovery_simulate_n8", || {
            std::hint::black_box(recovery.simulated_efficiency(8, 0xFA17))
        })
        .clone();

    let results = [&sample, &campaign, &daly];
    write_json(&path, 10, &results);
    println!("wrote {}", path.display());

    if std::env::var_os("ENA_BENCH_NO_GUARD").is_some() {
        return;
    }
    let mut regressed = false;
    for m in results {
        if let Some((_, old)) = previous.iter().find(|(l, _)| *l == m.label) {
            let ratio = m.median_ns() / old.max(1e-9);
            if ratio > GUARD_FACTOR {
                eprintln!(
                    "REGRESSION: {} median {:.0} ns is {ratio:.1}x the recorded {:.0} ns",
                    m.label,
                    m.median_ns(),
                    old
                );
                regressed = true;
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

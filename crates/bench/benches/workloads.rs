//! Benchmarks the proxy-application mini-kernels (trace generation rate).
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_testkit::timing::Harness;
use ena_workloads::app::RunConfig;
use ena_workloads::apps::all_apps;

fn main() {
    let mut h = Harness::new("workloads");
    h.sample_size(10);
    let cfg = RunConfig::small();
    for app in all_apps() {
        h.bench(app.name(), || std::hint::black_box(app.run(&cfg)));
    }
}

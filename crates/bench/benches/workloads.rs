//! Benchmarks the proxy-application mini-kernels (trace generation rate).

use criterion::{criterion_group, criterion_main, Criterion};
use ena_workloads::app::RunConfig;
use ena_workloads::apps::all_apps;

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10);
    let cfg = RunConfig::small();
    for app in all_apps() {
        group.bench_function(app.name(), |b| {
            b.iter(|| std::hint::black_box(app.run(&cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);

//! Benchmarks the trace-driven memory system.
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_memory::hbm::{Direction, HbmStack};
use ena_memory::policy::StaticPlacement;
use ena_memory::system::MemorySystem;
use ena_model::config::EhpConfig;
use ena_testkit::timing::Harness;

fn main() {
    let mut h = Harness::new("memory");

    h.bench("hbm/service_10k", || {
        let mut stack = HbmStack::with_defaults();
        for i in 0..10_000u64 {
            std::hint::black_box(stack.service(i * 64 % (1 << 24), 64, Direction::Read, i));
        }
    });

    let config = EhpConfig::paper_baseline();
    h.bench("memory_system/replay_10k", || {
        let mut system = MemorySystem::new(&config, Box::new(StaticPlacement::new(0.8)), u64::MAX);
        for page in 0..10_000u64 {
            let _ = system.access(page * 4096, 64, page % 3 == 0);
        }
        std::hint::black_box(system.stats().avg_latency_cycles())
    });
}

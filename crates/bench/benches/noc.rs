//! Benchmarks the packet-level NoC simulator (Fig. 7's engine).
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_noc::sim::NocSim;
use ena_noc::topology::Topology;
use ena_noc::traffic::WorkloadTraffic;
use ena_testkit::timing::Harness;
use ena_workloads::profile_for;

fn main() {
    let profile = profile_for("SNAP").unwrap();
    let traffic = WorkloadTraffic::from_profile(&profile, 42);
    let mut h = Harness::new("noc");

    for (name, topo) in [
        ("ehp_2k_requests", Topology::ehp(8, 8)),
        ("monolithic_2k_requests", Topology::monolithic(8, 8)),
    ] {
        let packets = traffic.generate(&topo, 2000);
        h.bench(name, || {
            let mut sim = NocSim::new(&topo);
            std::hint::black_box(sim.run(&packets))
        });
    }

    let topo = Topology::ehp(8, 8);
    h.bench("route_table", || std::hint::black_box(topo.route_table()));
}

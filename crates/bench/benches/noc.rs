//! Benchmarks the packet-level NoC simulator (Fig. 7's engine).

use criterion::{criterion_group, criterion_main, Criterion};
use ena_noc::sim::NocSim;
use ena_noc::topology::Topology;
use ena_noc::traffic::WorkloadTraffic;
use ena_workloads::profile_for;

fn bench_noc(c: &mut Criterion) {
    let profile = profile_for("SNAP").unwrap();
    let traffic = WorkloadTraffic::from_profile(&profile, 42);

    for (name, topo) in [
        ("noc/ehp_2k_requests", Topology::ehp(8, 8)),
        ("noc/monolithic_2k_requests", Topology::monolithic(8, 8)),
    ] {
        let packets = traffic.generate(&topo, 2000);
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = NocSim::new(&topo);
                std::hint::black_box(sim.run(&packets))
            })
        });
    }

    c.bench_function("noc/route_table", |b| {
        let topo = Topology::ehp(8, 8);
        b.iter(|| std::hint::black_box(topo.route_table()))
    });
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);

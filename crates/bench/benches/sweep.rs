//! Benchmarks the parallel sweep engine against the sequential oracle:
//! points/sec on the coarse grid at `jobs = 1` versus `jobs = N`, with a
//! fresh engine per iteration so memoization never shortcuts the work.
//!
//! Run with `cargo bench -p ena-bench --features timing`. The scaling
//! summary lands in `artifacts/sweep_scaling.txt`.

use ena_core::dse::{DesignSpace, Explorer};
use ena_sweep::{SweepEngine, SweepSpec};
use ena_testkit::golden::artifacts_dir;
use ena_testkit::timing::Harness;
use ena_workloads::paper_profiles;

fn sweep_once(jobs: usize) -> usize {
    let mut engine = SweepEngine::new(Explorer::default());
    let spec = SweepSpec {
        jobs,
        ..SweepSpec::new(DesignSpace::coarse(), paper_profiles())
    };
    engine
        .run(&spec)
        .expect("coarse sweep completes")
        .telemetry
        .total_points
}

fn main() {
    let points = DesignSpace::coarse().len() as f64;
    let parallel_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut h = Harness::new("sweep");
    h.sample_size(10);
    let seq = h.bench("coarse_sweep_jobs_1", || {
        std::hint::black_box(sweep_once(1))
    });
    let seq_pps = points / (seq.median_ns() * 1e-9);
    let par = h.bench(&format!("coarse_sweep_jobs_{parallel_jobs}"), || {
        std::hint::black_box(sweep_once(parallel_jobs))
    });
    let par_pps = points / (par.median_ns() * 1e-9);

    let summary = format!(
        "sweep scaling — coarse grid, {points:.0} points, fresh engine per run\n\
         jobs=1: {seq_pps:.0} points/sec\n\
         jobs={parallel_jobs}: {par_pps:.0} points/sec\n\
         speedup: {:.2}x\n",
        par_pps / seq_pps
    );
    print!("{summary}");
    let path = artifacts_dir().join("sweep_scaling.txt");
    std::fs::write(&path, summary).expect("write sweep_scaling.txt");
    println!("wrote {}", path.display());
}

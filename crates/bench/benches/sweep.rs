//! Benchmarks the parallel sweep engine against the sequential oracle
//! (points/sec on the coarse grid at `jobs = 1` versus `jobs = N`, with
//! a fresh engine per iteration so memoization never shortcuts the
//! work) plus the disk-cache hot paths: appends under both sync
//! policies and a warm open that parses and CRC-checks every line.
//!
//! Run with `cargo bench -p ena-bench --features timing`. The scaling
//! summary lands in `artifacts/sweep_scaling.txt`; cache measurements
//! land machine-readably in `artifacts/BENCH_sweep.json` and, when a
//! previous file exists, each median is regression-guarded against it
//! (a > [`GUARD_FACTOR`]x slowdown fails the run; set
//! `ENA_BENCH_NO_GUARD=1` to bypass, e.g. when changing machines).

use std::path::PathBuf;
use std::sync::Arc;

use ena_core::dse::{DesignSpace, Explorer};
use ena_sweep::{hex_field, CacheRecord, DiskCache, RealFs, SweepEngine, SweepSpec, SyncPolicy};
use ena_testkit::golden::artifacts_dir;
use ena_testkit::timing::{Harness, Measurement};
use ena_workloads::paper_profiles;

/// Tolerated median slowdown versus the previous recorded run.
const GUARD_FACTOR: f64 = 4.0;

/// Records appended per iteration of the cache benches.
const APPENDS: usize = 64;

/// A cheap record so the benches time the cache, not the model.
#[derive(Clone, Debug)]
struct BenchRecord {
    value: f64,
}

impl CacheRecord for BenchRecord {
    const TAG: &'static str = "bench/1";

    fn encode(&self) -> String {
        format!("{:016x}", self.value.to_bits())
    }

    fn decode(fields: &mut std::str::Split<'_, char>) -> Option<Self> {
        Some(BenchRecord {
            value: f64::from_bits(hex_field(fields.next()?)?),
        })
    }
}

fn bench_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _removed = std::fs::remove_dir_all(&dir);
    dir
}

/// Opens a fresh cache and appends [`APPENDS`] records under `sync`.
fn append_run(dir: &PathBuf, sync: SyncPolicy) -> u64 {
    let _removed = std::fs::remove_dir_all(dir);
    let (mut cache, _) =
        DiskCache::<BenchRecord>::open_with(Arc::new(RealFs), sync, dir, 0xBE9C, "bench-v1")
            .expect("open cache");
    for i in 0..APPENDS as u64 {
        let rec = BenchRecord {
            value: 0.25 + i as f64,
        };
        cache.append(i + 1, &rec).expect("append");
    }
    cache.generation()
}

fn write_json(path: &std::path::Path, samples: usize, results: &[&Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"group\": \"sweep\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    out.push_str("  \"benches\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            m.label,
            m.median_ns(),
            m.min_ns(),
            m.mean_ns()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_sweep.json");
}

/// Pulls `"label": ..., "median_ns": <value>` pairs out of a previous
/// run's JSON without a parser dependency.
fn previous_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"label\": \"").skip(1) {
        let Some(label_end) = chunk.find('"') else {
            continue;
        };
        let Some(at) = chunk.find("\"median_ns\": ") else {
            continue;
        };
        let rest = &chunk[at + "\"median_ns\": ".len()..];
        let value: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.push((chunk[..label_end].to_string(), v));
        }
    }
    out
}

fn sweep_once(jobs: usize) -> usize {
    let mut engine = SweepEngine::new(Explorer::default());
    let spec = SweepSpec {
        jobs,
        ..SweepSpec::new(DesignSpace::coarse(), paper_profiles())
    };
    engine
        .run(&spec)
        .expect("coarse sweep completes")
        .telemetry
        .total_points
}

fn main() {
    let points = DesignSpace::coarse().len() as f64;
    let parallel_jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let mut h = Harness::new("sweep");
    h.sample_size(10);
    let seq = h.bench("coarse_sweep_jobs_1", || {
        std::hint::black_box(sweep_once(1))
    });
    let seq_pps = points / (seq.median_ns() * 1e-9);
    let par = h.bench(&format!("coarse_sweep_jobs_{parallel_jobs}"), || {
        std::hint::black_box(sweep_once(parallel_jobs))
    });
    let par_pps = points / (par.median_ns() * 1e-9);

    let summary = format!(
        "sweep scaling — coarse grid, {points:.0} points, fresh engine per run\n\
         jobs=1: {seq_pps:.0} points/sec\n\
         jobs={parallel_jobs}: {par_pps:.0} points/sec\n\
         speedup: {:.2}x\n",
        par_pps / seq_pps
    );
    print!("{summary}");
    let path = artifacts_dir().join("sweep_scaling.txt");
    std::fs::write(&path, summary).expect("write sweep_scaling.txt");
    println!("wrote {}", path.display());

    // Cache hot paths: appends under both durability policies, and a
    // warm open that re-parses (and CRC-checks) every line.
    let json_path = artifacts_dir().join("BENCH_sweep.json");
    let previous = std::fs::read_to_string(&json_path)
        .map(|t| previous_medians(&t))
        .unwrap_or_default();

    let per_record_dir = bench_dir("bench-cache-per-record");
    let per_record = h
        .bench("cache_append_64_per_record", || {
            std::hint::black_box(append_run(&per_record_dir, SyncPolicy::PerRecord))
        })
        .clone();
    let flush_dir = bench_dir("bench-cache-flush");
    let flush = h
        .bench("cache_append_64_flush", || {
            std::hint::black_box(append_run(&flush_dir, SyncPolicy::Flush))
        })
        .clone();

    let warm_dir = bench_dir("bench-cache-warm");
    append_run(&warm_dir, SyncPolicy::Flush);
    let warm = h
        .bench("cache_open_warm_64", || {
            let (_, loaded) = DiskCache::<BenchRecord>::open_with(
                Arc::new(RealFs),
                SyncPolicy::Flush,
                &warm_dir,
                0xBE9C,
                "bench-v1",
            )
            .expect("warm open");
            assert_eq!(loaded.len(), APPENDS, "warm open must hit every record");
            std::hint::black_box(loaded.len())
        })
        .clone();

    let results = [&per_record, &flush, &warm];
    write_json(&json_path, 10, &results);
    println!("wrote {}", json_path.display());

    if std::env::var_os("ENA_BENCH_NO_GUARD").is_some() {
        return;
    }
    let mut regressed = false;
    for m in results {
        if let Some((_, old)) = previous.iter().find(|(l, _)| *l == m.label) {
            let ratio = m.median_ns() / old.max(1e-9);
            if ratio > GUARD_FACTOR {
                eprintln!(
                    "REGRESSION: {} median {:.0} ns is {ratio:.1}x the recorded {:.0} ns",
                    m.label,
                    m.median_ns(),
                    old
                );
                regressed = true;
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

//! Benchmarks the analytic performance model and full node evaluation —
//! the inner loop of the design-space exploration.
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_core::node::{EvalOptions, NodeSimulator};
use ena_core::perf::PerfModel;
use ena_model::config::EhpConfig;
use ena_testkit::timing::Harness;
use ena_workloads::profile_for;

fn main() {
    let config = EhpConfig::paper_baseline();
    let profile = profile_for("LULESH").unwrap();
    let model = PerfModel::default();
    let mut h = Harness::new("perf");

    h.bench("perf_model/evaluate", || {
        std::hint::black_box(model.evaluate(&config, &profile, 0.15))
    });

    let sim = NodeSimulator::new();
    let options = EvalOptions::with_miss_fraction(0.15);
    h.bench("node/evaluate", || {
        std::hint::black_box(sim.evaluate(&config, &profile, &options))
    });

    let optimized = EvalOptions::fully_optimized();
    h.bench("node/evaluate_optimized", || {
        std::hint::black_box(sim.evaluate(&config, &profile, &optimized))
    });
}

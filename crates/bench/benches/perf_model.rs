//! Benchmarks the analytic performance model and full node evaluation —
//! the inner loop of the design-space exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use ena_core::node::{EvalOptions, NodeSimulator};
use ena_core::perf::PerfModel;
use ena_model::config::EhpConfig;
use ena_workloads::profile_for;

fn bench_perf(c: &mut Criterion) {
    let config = EhpConfig::paper_baseline();
    let profile = profile_for("LULESH").unwrap();
    let model = PerfModel::default();
    c.bench_function("perf_model/evaluate", |b| {
        b.iter(|| std::hint::black_box(model.evaluate(&config, &profile, 0.15)))
    });

    let sim = NodeSimulator::new();
    let options = EvalOptions::with_miss_fraction(0.15);
    c.bench_function("node/evaluate", |b| {
        b.iter(|| std::hint::black_box(sim.evaluate(&config, &profile, &options)))
    });

    let optimized = EvalOptions::fully_optimized();
    c.bench_function("node/evaluate_optimized", |b| {
        b.iter(|| std::hint::black_box(sim.evaluate(&config, &profile, &optimized)))
    });
}

criterion_group!(benches, bench_perf);
criterion_main!(benches);

//! Benchmarks the compact thermal solver (Figs. 10-11's engine).

use criterion::{criterion_group, criterion_main, Criterion};
use ena_thermal::ehp::{ChipletPower, ChipletThermalModel};

fn bench_thermal(c: &mut Criterion) {
    let model = ChipletThermalModel::new(ChipletPower {
        cu_dynamic_w: 9.0,
        cu_static_w: 2.0,
        dram_dynamic_w: 2.5,
        dram_static_w: 0.6,
        interposer_w: 1.5,
    });
    let mut group = c.benchmark_group("thermal");
    group.sample_size(10);
    group.bench_function("chiplet_stack_solve", |b| {
        b.iter(|| std::hint::black_box(model.solve().expect("converges")))
    });
    group.finish();
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);

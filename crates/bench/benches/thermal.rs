//! Benchmarks the compact thermal solver (Figs. 10-11's engine).
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_testkit::timing::Harness;
use ena_thermal::ehp::{ChipletPower, ChipletThermalModel};

fn main() {
    let model = ChipletThermalModel::new(ChipletPower {
        cu_dynamic_w: 9.0,
        cu_static_w: 2.0,
        dram_dynamic_w: 2.5,
        dram_static_w: 0.6,
        interposer_w: 1.5,
    });
    let mut h = Harness::new("thermal");
    h.sample_size(10);
    h.bench("chiplet_stack_solve", || {
        std::hint::black_box(model.solve().expect("converges"))
    });
}

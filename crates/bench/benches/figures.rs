//! Benchmarks the experiment generators themselves: how long each paper
//! artifact takes to regenerate end-to-end.
//!
//! Run with `cargo bench -p ena-bench --features timing`.

use ena_testkit::timing::Harness;

fn main() {
    let mut h = Harness::new("figures");
    h.sample_size(10);
    // The cheap generators run in-loop; the expensive ones (thermal/DSE
    // based) are covered by the golden-regression tests instead, to keep
    // bench wall time sane.
    for name in ["fig8", "fig14", "fig4", "fig7"] {
        h.bench(name, || {
            std::hint::black_box(ena_bench::experiments::run(name).expect("known"))
        });
    }
}

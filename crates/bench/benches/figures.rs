//! Benchmarks the experiment generators themselves: how long each paper
//! artifact takes to regenerate end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    // The cheap generators run in-loop; the expensive ones (thermal/DSE
    // based) are covered once per bench run to keep wall time sane.
    for name in ["fig8", "fig14", "fig4", "fig7"] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(ena_bench::experiments::run(name).expect("known")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

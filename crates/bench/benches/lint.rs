//! Benchmarks the ena-lint static-analysis pass over the real
//! workspace: the scan/lex phase alone (`load_workspace`) and the full
//! run with every per-file, crate-level, and workspace concurrency rule
//! enabled. The full scan is the CI gate's latency floor, so it is
//! regression-guarded like every other bench.
//!
//! Run with `cargo bench -p ena-bench --features timing --bench lint`.
//! Measurements land in `artifacts/BENCH_lint.json`; when a previous
//! file exists each median is guarded against it (> [`GUARD_FACTOR`]x
//! slowdown fails; `ENA_BENCH_NO_GUARD=1` bypasses, e.g. on a new
//! machine).

use std::path::Path;

use ena_testkit::golden::artifacts_dir;
use ena_testkit::timing::{Harness, Measurement};

/// Tolerated median slowdown versus the previous recorded run.
const GUARD_FACTOR: f64 = 4.0;

fn write_json(path: &Path, samples: usize, results: &[&Measurement]) {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"group\": \"lint\",\n");
    let _ = writeln!(out, "  \"samples\": {samples},");
    out.push_str("  \"benches\": [\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"mean_ns\": {:.1}}}",
            m.label,
            m.median_ns(),
            m.min_ns(),
            m.mean_ns()
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_lint.json");
}

/// Pulls `"label": ..., "median_ns": <value>` pairs out of a previous
/// run's JSON without a parser dependency.
fn previous_medians(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for chunk in text.split("\"label\": \"").skip(1) {
        let Some(label_end) = chunk.find('"') else {
            continue;
        };
        let Some(at) = chunk.find("\"median_ns\": ") else {
            continue;
        };
        let rest = &chunk[at + "\"median_ns\": ".len()..];
        let value: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(v) = value.parse::<f64>() {
            out.push((chunk[..label_end].to_string(), v));
        }
    }
    out
}

fn main() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = ena_lint::find_workspace_root(here).expect("inside the ena workspace");

    let mut h = Harness::new("lint");
    h.sample_size(10);

    let root_for_scan = root.clone();
    let scan = h
        .bench("workspace_scan_and_lex", move || {
            let crates = ena_lint::scan::load_workspace(&root_for_scan).expect("workspace scans");
            let files: usize = crates.iter().map(|c| c.files.len()).sum();
            std::hint::black_box(files)
        })
        .clone();

    let root_for_run = root.clone();
    let full = h
        .bench("workspace_full_lint", move || {
            let opts = ena_lint::Options {
                root: root_for_run.clone(),
                config_path: None,
                deny_warnings: true,
            };
            let report = ena_lint::run(&opts).expect("workspace lints");
            assert!(
                report.diagnostics.is_empty(),
                "bench expects a clean workspace:\n{}",
                report.render()
            );
            std::hint::black_box(report.files_scanned)
        })
        .clone();

    let json_path = artifacts_dir().join("BENCH_lint.json");
    let previous = std::fs::read_to_string(&json_path)
        .map(|t| previous_medians(&t))
        .unwrap_or_default();
    let results = [&scan, &full];
    write_json(&json_path, 10, &results);
    println!("wrote {}", json_path.display());

    if std::env::var_os("ENA_BENCH_NO_GUARD").is_some() {
        return;
    }
    let mut regressed = false;
    for m in results {
        if let Some((_, old)) = previous.iter().find(|(l, _)| *l == m.label) {
            let ratio = m.median_ns() / old.max(1e-9);
            if ratio > GUARD_FACTOR {
                eprintln!(
                    "REGRESSION: {} median {:.0} ns is {ratio:.1}x the recorded {:.0} ns",
                    m.label,
                    m.median_ns(),
                    old
                );
                regressed = true;
            }
        }
    }
    if regressed {
        std::process::exit(1);
    }
}

//! Command-line interface logic for the ENA toolkit.
//!
//! The `ena` binary wraps the node simulator for interactive use:
//!
//! ```text
//! ena evaluate --app LULESH --cus 320 --mhz 1000 --tbps 3 [--miss 0.15] [--optimized]
//! ena suite    [--cus N --mhz F --tbps B]       # all eight workloads
//! ena dse      [--budget 160] [--fine]          # design-space exploration
//! ena sweep    [--jobs N] [--budget 160] [--fine] [--resume] [--frontier]
//! ena chiplet  --app SNAP                       # chiplet-vs-monolithic study
//! ena faults   [--seed N] [--app CoMD] [--transient]
//! ena multinode [--nodes N] [--fabric-topology T] [--seed N] [--app CoMD]
//!               [--mtbf HOURS] [--checkpoint-cost MIN]
//! ena multinode --sweep [--jobs N] [--resume] [--frontier] [--mtbf H] [--checkpoint-cost MIN]
//! ena chaos    [--seed N] [--runs N] [--jobs N] # chaos-test the sweep substrate
//! ena serve    [--addr HOST] [--port N] [--workers N] [--queue N] [--batch N]
//!              [--cache DIR] [--port-file PATH] [--budget W]
//! ena client   (--port N | --port-file PATH) --script "CMD; CMD; ..."
//! ena cache verify PATH                         # inspect a sweep cache file
//! ena lint     [--deny-warnings] [--json]       # determinism & concurrency static analysis
//! ```
//!
//! Parsing and rendering live in this library so they are unit-testable;
//! the binary is a thin wrapper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ena_core::chiplet::chiplet_study;
use ena_core::dse::{DesignSpace, Explorer};
use ena_core::node::{EvalOptions, NodeSimulator};
use ena_fabric::{
    run_multinode_campaign, FabricKind, MultiNodeCampaignSpec, MultiNodeSpace, MultiNodeSweep,
    MultiNodeSweepSpec, RecoveryModel, RecoverySpace, RecoverySweep, RecoverySweepSpec,
    ScaleOutSpec,
};
use ena_fabric::{MultiNodeRecord, RecoveryRecord};
use ena_faults::{
    run_campaign, run_transient_campaign, CampaignSpec, NodeFaultPlan, TransientCampaignSpec,
};
use ena_model::config::EhpConfig;
use ena_model::units::{GigabytesPerSec, Megahertz, Watts};
use ena_power::opts::PowerOptimization;
use ena_serve::{Client as ServeClient, ServeConfig, Server};
use ena_sweep::{
    read_file_info, run_chaos_campaign, verify_file, CacheMode, CacheRecord, ChaosSpec,
    SweepEngine, SweepSpec,
};
use ena_workloads::{paper_profiles, profile_for};

/// A parsed command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Evaluate one app on one configuration.
    Evaluate {
        /// Application name (Table I).
        app: String,
        /// Configuration knobs.
        point: Point,
        /// Explicit miss fraction (None = the app's own).
        miss: Option<f64>,
        /// Apply the Section V-E power optimizations.
        optimized: bool,
    },
    /// Evaluate the whole suite on one configuration.
    Suite {
        /// Configuration knobs.
        point: Point,
    },
    /// Run the design-space exploration.
    Dse {
        /// Package power budget in watts.
        budget: f64,
        /// Use the full >1000-point sweep instead of the coarse grid.
        fine: bool,
    },
    /// Run the parallel memoized sweep engine.
    Sweep {
        /// Package power budget in watts.
        budget: f64,
        /// Use the full >1000-point sweep instead of the coarse grid.
        fine: bool,
        /// Worker thread count.
        jobs: usize,
        /// Use the persistent cache under `artifacts/sweep-cache/`.
        resume: bool,
        /// Print the Pareto frontier.
        frontier: bool,
    },
    /// Run the chiplet-vs-monolithic study for one app.
    Chiplet {
        /// Application name.
        app: String,
    },
    /// Run a seeded fault-injection campaign and print the report.
    Faults {
        /// Campaign seed.
        seed: u64,
        /// Application name driving the degraded-node models.
        app: String,
        /// Run the transient-fault (ECC/retry/rollback) campaign instead
        /// of the permanent-fault one.
        transient: bool,
    },
    /// Run a multi-node fabric campaign, or sweep the (nodes x topology)
    /// grid.
    Multinode {
        /// Fleet size (campaign mode).
        nodes: u32,
        /// Cabinet topology (campaign mode).
        topology: FabricKind,
        /// Campaign seed.
        seed: u64,
        /// Application name driving the scale-out model.
        app: String,
        /// Sweep the grid instead of running one campaign.
        sweep: bool,
        /// Worker thread count (sweep mode).
        jobs: usize,
        /// Use the persistent cache under `artifacts/multinode-cache/`.
        resume: bool,
        /// Print the Pareto frontier (sweep mode).
        frontier: bool,
        /// Node MTBF in hours; enables checkpoint/restart recovery
        /// reporting (None = derive from the resilience model when
        /// `--checkpoint-cost` is given).
        mtbf: Option<f64>,
        /// Checkpoint cost in minutes (default 3.0 when `--mtbf` is
        /// given alone).
        checkpoint_cost: Option<f64>,
    },
    /// Run a seeded chaos campaign against the sweep substrate: injected
    /// I/O faults + worker kills, with crash-consistency invariants
    /// checked after every run.
    Chaos {
        /// Campaign seed.
        seed: u64,
        /// Faulted runs before the final clean run.
        runs: u32,
        /// Worker thread count.
        jobs: usize,
    },
    /// Run the persistent evaluation service until a `SHUTDOWN` request.
    Serve {
        /// Interface to bind.
        addr: String,
        /// TCP port (0 = ephemeral).
        port: u16,
        /// Worker threads serving connections.
        workers: usize,
        /// Pending-connection queue capacity (overflow is answered BUSY).
        queue: usize,
        /// Largest EVAL run folded into one engine dispatch.
        batch: usize,
        /// Package power budget in watts.
        budget: f64,
        /// Persistent cache directory (None = memory only).
        cache: Option<std::path::PathBuf>,
        /// File to write the bound port number to (for scripts binding
        /// port 0).
        port_file: Option<std::path::PathBuf>,
    },
    /// Run a scripted client session against a running server.
    Client {
        /// Server host.
        addr: String,
        /// Server port.
        port: Option<u16>,
        /// File to read the server port from (written by `serve
        /// --port-file`).
        port_file: Option<std::path::PathBuf>,
        /// Semicolon-separated request lines, pipelined in order.
        script: String,
    },
    /// Verify a sweep cache file against its own header stamps.
    CacheVerify {
        /// The cache file to inspect.
        path: std::path::PathBuf,
    },
    /// Run the `ena-lint` determinism/robustness pass over the workspace.
    Lint {
        /// Treat warnings as failures.
        deny_warnings: bool,
        /// Emit machine-readable JSON instead of the text rendering.
        json: bool,
    },
    /// Print usage.
    Help,
}

/// CU count / clock / bandwidth triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Total CU count.
    pub cus: u32,
    /// GPU clock in MHz.
    pub mhz: f64,
    /// In-package bandwidth in TB/s.
    pub tbps: f64,
}

impl Default for Point {
    fn default() -> Self {
        Self {
            cus: 320,
            mhz: 1000.0,
            tbps: 3.0,
        }
    }
}

impl Point {
    fn to_config(self) -> Result<EhpConfig, String> {
        EhpConfig::builder()
            .total_cus(self.cus)
            .gpu_clock(Megahertz::new(self.mhz))
            .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(self.tbps))
            .build()
            .map_err(|e| e.to_string())
    }
}

/// Extracts `--name value` from `args`, removing both tokens.
fn take_value(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) if i + 1 < args.len() => {
            let v = args.remove(i + 1);
            args.remove(i);
            Ok(Some(v))
        }
        Some(_) => Err(format!("{name} requires a value")),
        None => Ok(None),
    }
}

/// Extracts a boolean `--flag`.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_point(args: &mut Vec<String>) -> Result<Point, String> {
    let mut p = Point::default();
    if let Some(v) = take_value(args, "--cus")? {
        p.cus = v.parse().map_err(|_| format!("bad --cus: {v}"))?;
    }
    if let Some(v) = take_value(args, "--mhz")? {
        p.mhz = v.parse().map_err(|_| format!("bad --mhz: {v}"))?;
    }
    if let Some(v) = take_value(args, "--tbps")? {
        p.tbps = v.parse().map_err(|_| format!("bad --tbps: {v}"))?;
    }
    Ok(p)
}

/// Default sweep worker count: one per available hardware thread.
fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Locates the repository `artifacts/` directory by walking up from the
/// working directory (creating `./artifacts` as a fallback target when
/// none exists yet).
fn artifacts_dir() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    for dir in cwd.ancestors() {
        let candidate = dir.join("artifacts");
        if candidate.is_dir() {
            return candidate;
        }
    }
    cwd.join("artifacts")
}

/// Extracts `--seed` (hex with `0x` prefix or decimal), defaulting to
/// the acceptance seed.
fn take_seed(args: &mut Vec<String>) -> Result<u64, String> {
    take_value(args, "--seed")?
        .map(|v| {
            let digits = v.strip_prefix("0x").unwrap_or(&v);
            let radix = if digits.len() < v.len() { 16 } else { 10 };
            u64::from_str_radix(digits, radix).map_err(|_| format!("bad --seed: {v}"))
        })
        .transpose()
        .map(|seed| seed.unwrap_or(0xC0FFEE))
}

fn require_app(args: &mut Vec<String>) -> Result<String, String> {
    let app = take_value(args, "--app")?.ok_or("--app is required")?;
    if profile_for(&app).is_none() {
        let names: Vec<String> = paper_profiles().iter().map(|p| p.name.clone()).collect();
        return Err(format!("unknown app '{app}'; known: {}", names.join(", ")));
    }
    Ok(app)
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for malformed input.
pub fn parse(mut args: Vec<String>) -> Result<Command, String> {
    let Some(cmd) = args.first().cloned() else {
        return Ok(Command::Help);
    };
    args.remove(0);
    let command = match cmd.as_str() {
        "evaluate" => {
            let app = require_app(&mut args)?;
            let point = parse_point(&mut args)?;
            let miss = take_value(&mut args, "--miss")?
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --miss: {v}")))
                .transpose()?;
            if let Some(m) = miss {
                if !(0.0..=1.0).contains(&m) {
                    return Err(format!("--miss must be in [0,1], got {m}"));
                }
            }
            let optimized = take_flag(&mut args, "--optimized");
            Command::Evaluate {
                app,
                point,
                miss,
                optimized,
            }
        }
        "suite" => Command::Suite {
            point: parse_point(&mut args)?,
        },
        "dse" => {
            let budget = take_value(&mut args, "--budget")?
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --budget: {v}")))
                .transpose()?
                .unwrap_or(160.0);
            let fine = take_flag(&mut args, "--fine");
            Command::Dse { budget, fine }
        }
        "sweep" => {
            let budget = take_value(&mut args, "--budget")?
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --budget: {v}")))
                .transpose()?
                .unwrap_or(160.0);
            let jobs = take_value(&mut args, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --jobs: {v}")))
                .transpose()?
                .unwrap_or_else(default_jobs);
            if jobs == 0 {
                return Err("--jobs must be at least 1".into());
            }
            Command::Sweep {
                budget,
                fine: take_flag(&mut args, "--fine"),
                jobs,
                resume: take_flag(&mut args, "--resume"),
                frontier: take_flag(&mut args, "--frontier"),
            }
        }
        "chiplet" => Command::Chiplet {
            app: require_app(&mut args)?,
        },
        "faults" => {
            let seed = take_seed(&mut args)?;
            let app = match take_value(&mut args, "--app")? {
                Some(a) => {
                    if profile_for(&a).is_none() {
                        return Err(format!("unknown app '{a}'"));
                    }
                    a
                }
                None => "CoMD".to_string(),
            };
            Command::Faults {
                seed,
                app,
                transient: take_flag(&mut args, "--transient"),
            }
        }
        "multinode" => {
            let nodes = take_value(&mut args, "--nodes")?
                .map(|v| v.parse::<u32>().map_err(|_| format!("bad --nodes: {v}")))
                .transpose()?
                .unwrap_or(64);
            if nodes < 2 {
                return Err("--nodes must be at least 2".into());
            }
            let topology = match take_value(&mut args, "--fabric-topology")? {
                Some(t) => FabricKind::parse(&t).map_err(|e| e.to_string())?,
                None => FabricKind::DragonflyLite,
            };
            let seed = take_seed(&mut args)?;
            let app = match take_value(&mut args, "--app")? {
                Some(a) => {
                    if profile_for(&a).is_none() {
                        return Err(format!("unknown app '{a}'"));
                    }
                    a
                }
                None => "CoMD".to_string(),
            };
            let jobs = take_value(&mut args, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --jobs: {v}")))
                .transpose()?
                .unwrap_or_else(default_jobs);
            if jobs == 0 {
                return Err("--jobs must be at least 1".into());
            }
            let mtbf = take_value(&mut args, "--mtbf")?
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --mtbf: {v}")))
                .transpose()?;
            if let Some(m) = mtbf {
                if !(m > 0.0) {
                    return Err(format!("--mtbf must be positive, got {m}"));
                }
            }
            let checkpoint_cost = take_value(&mut args, "--checkpoint-cost")?
                .map(|v| {
                    v.parse::<f64>()
                        .map_err(|_| format!("bad --checkpoint-cost: {v}"))
                })
                .transpose()?;
            if let Some(c) = checkpoint_cost {
                if !(c > 0.0) {
                    return Err(format!("--checkpoint-cost must be positive, got {c}"));
                }
            }
            Command::Multinode {
                nodes,
                topology,
                seed,
                app,
                sweep: take_flag(&mut args, "--sweep"),
                jobs,
                resume: take_flag(&mut args, "--resume"),
                frontier: take_flag(&mut args, "--frontier"),
                mtbf,
                checkpoint_cost,
            }
        }
        "chaos" => {
            let seed = take_seed(&mut args)?;
            let runs = take_value(&mut args, "--runs")?
                .map(|v| v.parse::<u32>().map_err(|_| format!("bad --runs: {v}")))
                .transpose()?
                .unwrap_or(3);
            if runs == 0 {
                return Err("--runs must be at least 1".into());
            }
            let jobs = take_value(&mut args, "--jobs")?
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --jobs: {v}")))
                .transpose()?
                .unwrap_or(2);
            if jobs == 0 {
                return Err("--jobs must be at least 1".into());
            }
            Command::Chaos { seed, runs, jobs }
        }
        "serve" => {
            let addr = take_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1".into());
            let port = take_value(&mut args, "--port")?
                .map(|v| v.parse::<u16>().map_err(|_| format!("bad --port: {v}")))
                .transpose()?
                .unwrap_or(0);
            let workers = take_value(&mut args, "--workers")?
                .map(|v| {
                    v.parse::<usize>()
                        .map_err(|_| format!("bad --workers: {v}"))
                })
                .transpose()?
                .unwrap_or(4);
            if workers == 0 {
                return Err("--workers must be at least 1".into());
            }
            let queue = take_value(&mut args, "--queue")?
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --queue: {v}")))
                .transpose()?
                .unwrap_or(16);
            if queue == 0 {
                return Err("--queue must be at least 1".into());
            }
            let batch = take_value(&mut args, "--batch")?
                .map(|v| v.parse::<usize>().map_err(|_| format!("bad --batch: {v}")))
                .transpose()?
                .unwrap_or(64);
            if batch == 0 {
                return Err("--batch must be at least 1".into());
            }
            let budget = take_value(&mut args, "--budget")?
                .map(|v| v.parse::<f64>().map_err(|_| format!("bad --budget: {v}")))
                .transpose()?
                .unwrap_or(160.0);
            Command::Serve {
                addr,
                port,
                workers,
                queue,
                batch,
                budget,
                cache: take_value(&mut args, "--cache")?.map(std::path::PathBuf::from),
                port_file: take_value(&mut args, "--port-file")?.map(std::path::PathBuf::from),
            }
        }
        "client" => {
            let addr = take_value(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1".into());
            let port = take_value(&mut args, "--port")?
                .map(|v| v.parse::<u16>().map_err(|_| format!("bad --port: {v}")))
                .transpose()?;
            let port_file = take_value(&mut args, "--port-file")?.map(std::path::PathBuf::from);
            if port.is_none() && port_file.is_none() {
                return Err("client needs --port or --port-file".into());
            }
            let script = take_value(&mut args, "--script")?.ok_or("--script is required")?;
            Command::Client {
                addr,
                port,
                port_file,
                script,
            }
        }
        "cache" => match args.first().map(String::as_str) {
            Some("verify") => {
                args.remove(0);
                if args.is_empty() {
                    return Err("cache verify needs a file path".into());
                }
                Command::CacheVerify {
                    path: std::path::PathBuf::from(args.remove(0)),
                }
            }
            _ => return Err("cache supports one subcommand: verify PATH".into()),
        },
        "lint" => Command::Lint {
            deny_warnings: take_flag(&mut args, "--deny-warnings"),
            json: take_flag(&mut args, "--json"),
        },
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(format!("unknown command '{other}'; try 'ena help'")),
    };
    if let Some(stray) = args.first() {
        return Err(format!("unrecognized argument '{stray}'"));
    }
    Ok(command)
}

/// Usage text.
pub const USAGE: &str = "\
ena — Exascale Node Architecture modeling toolkit

commands:
  evaluate --app NAME [--cus N] [--mhz F] [--tbps B] [--miss M] [--optimized]
  suite    [--cus N] [--mhz F] [--tbps B]
  dse      [--budget W] [--fine]
  sweep    [--jobs N] [--budget W] [--fine] [--resume] [--frontier]
  chiplet  --app NAME
  faults   [--seed N] [--app NAME] [--transient]
  multinode [--nodes N] [--fabric-topology T] [--seed N] [--app NAME]
           [--mtbf HOURS] [--checkpoint-cost MIN]
  multinode --sweep [--jobs N] [--app NAME] [--resume] [--frontier]
           [--mtbf HOURS] [--checkpoint-cost MIN]
  chaos    [--seed N] [--runs N] [--jobs N]
  serve    [--addr HOST] [--port N] [--workers N] [--queue N] [--batch N]
           [--cache DIR] [--port-file PATH] [--budget W]
  client   (--port N | --port-file PATH) [--addr HOST] --script \"CMD; CMD\"
  cache verify PATH
  lint     [--deny-warnings] [--json]
  help

apps: MaxFlops, CoMD, CoMD-LJ, HPGMG, LULESH, MiniAMR, XSBench, SNAP
fabric topologies: fat-tree, torus, dragonfly
defaults: 320 CUs / 1000 MHz / 3 TB/s (the paper baseline); 64-node dragonfly cabinet
--transient runs the ECC/retry/rollback campaign; --mtbf/--checkpoint-cost add a
Young/Daly checkpoint/restart section (sweep mode: checkpoint-interval x nodes grid)
chaos injects seeded I/O faults + worker kills into the sweep cache paths and
verifies crash-consistency invariants (exits nonzero on any violation)
serve runs a persistent evaluation service (EVAL / SWEEP coarse|fine / FRONTIER /
STATS / SNAPSHOT / SHUTDOWN) with single-flight memoization; client pipelines a
';'-separated script against it; cache verify audits any sweep cache file";

/// Executes a parsed command, returning the report text.
///
/// # Errors
///
/// Returns a message if the configuration is invalid.
pub fn execute(command: Command) -> Result<String, String> {
    let sim = NodeSimulator::new();
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Evaluate {
            app,
            point,
            miss,
            optimized,
        } => {
            let config = point.to_config()?;
            let profile = profile_for(&app).ok_or_else(|| format!("unknown app: {app}"))?;
            let mut options = match miss {
                Some(m) => EvalOptions::with_miss_fraction(m),
                None => EvalOptions::default(),
            };
            if optimized {
                options.optimizations = PowerOptimization::ALL.to_vec();
            }
            let eval = sim.evaluate(&config, &profile, &options);
            let t = sim.thermal(&config, &eval).map_err(|e| e.to_string())?;
            Ok(format!(
                "{app} on {} CUs / {} / {:.1} TB/s\n\
                 throughput:    {:.2} TF ({:.1}% of peak)\n\
                 package power: {:.1} W\n\
                 node power:    {:.1} W ({:.1} GF/W)\n\
                 peak DRAM:     {:.1} (limit 85 degC)",
                config.gpu.total_cus(),
                config.gpu.clock,
                config.hbm.total_bandwidth().terabytes_per_sec(),
                eval.perf.throughput.teraflops(),
                100.0 * eval.perf.throughput.value() / config.peak_throughput().value(),
                eval.package_power().value(),
                eval.node_power().value(),
                eval.efficiency(),
                t.peak_dram(),
            ))
        }
        Command::Suite { point } => {
            let config = point.to_config()?;
            let mut out = format!(
                "suite on {} CUs / {} / {:.1} TB/s\n{:<10} {:>8} {:>10} {:>9}\n",
                config.gpu.total_cus(),
                config.gpu.clock,
                config.hbm.total_bandwidth().terabytes_per_sec(),
                "app",
                "TF",
                "package W",
                "GF/W"
            );
            for profile in paper_profiles() {
                let eval = sim.evaluate(&config, &profile, &EvalOptions::default());
                out.push_str(&format!(
                    "{:<10} {:>8.2} {:>10.1} {:>9.1}\n",
                    profile.name,
                    eval.perf.throughput.teraflops(),
                    eval.package_power().value(),
                    eval.efficiency(),
                ));
            }
            Ok(out)
        }
        Command::Dse { budget, fine } => {
            let explorer = Explorer {
                budget: Watts::new(budget),
                ..Explorer::default()
            };
            let space = if fine {
                DesignSpace::paper()
            } else {
                DesignSpace::coarse()
            };
            let result = explorer
                .explore(&space, &paper_profiles())
                .map_err(|e| e.to_string())?;
            let mut out = format!(
                "swept {} configurations, {} feasible under {budget} W\n\
                 best-mean: {}\n\nper-app oracle:\n",
                result.evaluated,
                result.feasible,
                result.best_mean.label()
            );
            for a in &result.per_app {
                out.push_str(&format!(
                    "  {:<10} {:<18} {:+.1}%\n",
                    a.app,
                    a.point.label(),
                    a.benefit_over_mean_pct
                ));
            }
            Ok(out)
        }
        Command::Sweep {
            budget,
            fine,
            jobs,
            resume,
            frontier,
        } => {
            let explorer = Explorer {
                budget: Watts::new(budget),
                ..Explorer::default()
            };
            let space = if fine {
                DesignSpace::paper()
            } else {
                DesignSpace::coarse()
            };
            let cache = if resume {
                CacheMode::Disk(artifacts_dir().join("sweep-cache"))
            } else {
                CacheMode::Memory
            };
            let spec = SweepSpec {
                jobs,
                cache,
                ..SweepSpec::new(space, paper_profiles())
            };
            let outcome = SweepEngine::new(explorer)
                .run(&spec)
                .map_err(|e| e.to_string())?;
            let t = &outcome.telemetry;
            let result = &outcome.result;
            let mut out = format!(
                "swept {} configurations on {} jobs, {} feasible under {budget} W\n\
                 best-mean: {}\n\
                 cache: {} hits / {} points ({:.1}% hit rate)\n\
                 throughput: {:.0} points/sec in {:.1} ms\n",
                result.evaluated,
                t.jobs,
                result.feasible,
                result.best_mean.label(),
                t.cache_hits,
                t.total_points,
                100.0 * t.hit_rate(),
                t.points_per_sec(),
                t.elapsed.as_secs_f64() * 1e3,
            );
            let utilization: Vec<String> = t
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| format!("w{i} {} pts/{} steals", w.points, w.steals))
                .collect();
            out.push_str(&format!("workers: {}\n", utilization.join(" | ")));
            out.push_str("\nper-app oracle:\n");
            for a in &result.per_app {
                out.push_str(&format!(
                    "  {:<10} {:<18} {:+.1}%\n",
                    a.app,
                    a.point.label(),
                    a.benefit_over_mean_pct
                ));
            }
            if frontier {
                out.push_str(&format!(
                    "\nPareto frontier ({} of {} feasible points):\n{:<20} {:>10} {:>8} {:>8}\n",
                    outcome.frontier.len(),
                    result.feasible,
                    "config",
                    "geomean",
                    "peak W",
                    "peak C"
                ));
                for f in &outcome.frontier {
                    out.push_str(&format!(
                        "{:<20} {:>9.1}% {:>8.1} {:>8.1}\n",
                        f.point.label(),
                        100.0 * f.score.exp(),
                        f.peak_power_w,
                        f.peak_dram_c
                    ));
                }
            }
            Ok(out)
        }
        Command::Faults {
            seed,
            app,
            transient,
        } => {
            if transient {
                Ok(run_transient_campaign(&TransientCampaignSpec::standard(seed)).render())
            } else {
                let mut spec = CampaignSpec::standard(seed);
                spec.workload = app;
                let report = run_campaign(&spec).map_err(|e| e.to_string())?;
                Ok(report.render())
            }
        }
        Command::Multinode {
            nodes,
            topology,
            seed,
            app,
            sweep,
            jobs,
            resume,
            frontier,
            mtbf,
            checkpoint_cost,
        } => {
            let recovery = match (mtbf, checkpoint_cost) {
                (None, None) => None,
                (Some(m), cost) => Some(RecoveryModel::new(m, cost.unwrap_or(3.0))),
                (None, Some(cost)) => Some(
                    RecoveryModel::from_node_assessment(&EhpConfig::paper_baseline(), &app, cost)
                        .ok_or_else(|| format!("unknown app: {app}"))?,
                ),
            };
            if sweep {
                if let Some(model) = recovery {
                    let cache = if resume {
                        CacheMode::Disk(artifacts_dir().join("recovery-cache"))
                    } else {
                        CacheMode::Memory
                    };
                    let spec = RecoverySweepSpec {
                        jobs,
                        cache,
                        seed,
                        ..RecoverySweepSpec::new(
                            RecoverySpace::standard(),
                            ScaleOutSpec::standard(app.clone()),
                            model,
                        )
                    };
                    let outcome = RecoverySweep::new().run(&spec).map_err(|e| e.to_string())?;
                    let best = outcome
                        .records
                        .iter()
                        .max_by(|a, b| a.recovered_exaflops.total_cmp(&b.recovered_exaflops))
                        .ok_or("empty recovery sweep")?;
                    let mut out = format!(
                        "recovery sweep: {} points (checkpoint-interval x nodes) for {app} \
                         on {jobs} jobs ({model})\n\
                         best recovered throughput: {} at {:.3} EF \
                         (interval {:.3} h, {:.1}% efficient)\n\
                         cache: {} hits / {} points ({:.1}% hit rate)\n",
                        outcome.total_points,
                        best.point.label(),
                        best.recovered_exaflops,
                        best.interval_hours,
                        100.0 * best.simulated,
                        outcome.cache_hits,
                        outcome.total_points,
                        100.0 * outcome.hit_rate(),
                    );
                    if frontier {
                        out.push_str(&format!(
                            "\nPareto frontier ({} of {} points):\n\
                             {:<12} {:>10} {:>12} {:>10} {:>10}\n",
                            outcome.frontier.len(),
                            outcome.total_points,
                            "point",
                            "interval h",
                            "recovered EF",
                            "analytic",
                            "simulated"
                        ));
                        for &i in &outcome.frontier {
                            let r = &outcome.records[i];
                            out.push_str(&format!(
                                "{:<12} {:>10.3} {:>12.3} {:>10.4} {:>10.4}\n",
                                r.point.label(),
                                r.interval_hours,
                                r.recovered_exaflops,
                                r.analytic,
                                r.simulated
                            ));
                        }
                    }
                    return Ok(out);
                }
                let cache = if resume {
                    CacheMode::Disk(artifacts_dir().join("multinode-cache"))
                } else {
                    CacheMode::Memory
                };
                let spec = MultiNodeSweepSpec {
                    jobs,
                    cache,
                    ..MultiNodeSweepSpec::new(
                        MultiNodeSpace::cabinet(),
                        ScaleOutSpec::standard(app.clone()),
                    )
                };
                let outcome = MultiNodeSweep::new()
                    .run(&spec)
                    .map_err(|e| e.to_string())?;
                let best = outcome
                    .records
                    .iter()
                    .max_by(|a, b| a.exaflops.total_cmp(&b.exaflops))
                    .ok_or("empty multi-node sweep")?;
                let mut out = format!(
                    "multi-node sweep: {} points (nodes x topology) for {app} on {jobs} jobs\n\
                     best throughput: {} at {:.3} EF ({:.1}% efficient, {:.2} MW)\n\
                     cache: {} hits / {} points ({:.1}% hit rate)\n",
                    outcome.total_points,
                    best.point.label(),
                    best.exaflops,
                    100.0 * best.efficiency,
                    best.power_mw,
                    outcome.cache_hits,
                    outcome.total_points,
                    100.0 * outcome.hit_rate(),
                );
                if frontier {
                    out.push_str(&format!(
                        "\nPareto frontier ({} of {} points):\n{:<16} {:>9} {:>8} {:>10} {:>10}\n",
                        outcome.frontier.len(),
                        outcome.total_points,
                        "point",
                        "EF",
                        "MW",
                        "eff %",
                        "comm us"
                    ));
                    for &i in &outcome.frontier {
                        let r = &outcome.records[i];
                        out.push_str(&format!(
                            "{:<16} {:>9.3} {:>8.2} {:>10.2} {:>10.1}\n",
                            r.point.label(),
                            r.exaflops,
                            r.power_mw,
                            100.0 * r.efficiency,
                            r.comm_us
                        ));
                    }
                }
                Ok(out)
            } else {
                let spec = MultiNodeCampaignSpec {
                    nodes,
                    kind: topology,
                    plan: NodeFaultPlan::scaleout_campaign(seed, nodes),
                    scaleout: ScaleOutSpec::standard(app),
                    recovery,
                };
                let report = run_multinode_campaign(&spec).map_err(|e| e.to_string())?;
                Ok(report.render())
            }
        }
        Command::Chaos { seed, runs, jobs } => {
            let space = DesignSpace {
                cu_counts: vec![192, 256, 320],
                clocks: vec![
                    Megahertz::new(900.0),
                    Megahertz::new(1000.0),
                    Megahertz::new(1100.0),
                ],
                bandwidths: vec![
                    GigabytesPerSec::from_terabytes_per_sec(2.0),
                    GigabytesPerSec::from_terabytes_per_sec(3.0),
                ],
            };
            let spec = ChaosSpec {
                seed,
                runs,
                jobs,
                ..ChaosSpec::new(artifacts_dir().join("chaos-cache"), space, paper_profiles())
            };
            // Injected worker kills are caught by the supervised pool;
            // silence the default per-panic stderr backtrace while the
            // campaign runs so the report stays readable.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let result = run_chaos_campaign(&Explorer::default(), &spec);
            std::panic::set_hook(hook);
            let report = result.map_err(|e| e.to_string())?;
            Ok(report.render())
        }
        Command::Serve {
            addr,
            port,
            workers,
            queue,
            batch,
            budget,
            cache,
            port_file,
        } => {
            let explorer = Explorer {
                budget: Watts::new(budget),
                ..Explorer::default()
            };
            let mut config = ServeConfig::new(explorer, paper_profiles());
            config.workers = workers;
            config.queue_cap = queue;
            config.max_batch = batch;
            config.cache_dir = cache;
            let (server, restored) = Server::new(config).map_err(|e| e.to_string())?;
            let listener =
                std::net::TcpListener::bind(format!("{addr}:{port}")).map_err(|e| e.to_string())?;
            let local = listener.local_addr().map_err(|e| e.to_string())?;
            if let Some(path) = &port_file {
                std::fs::write(path, local.port().to_string()).map_err(|e| e.to_string())?;
            }
            // Announce readiness before blocking in the accept loop, so
            // scripts (and CI) know when to connect.
            println!("listening on {local} ({restored} records restored)");
            use std::io::Write as _;
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            let stats = server.serve(listener).map_err(|e| e.to_string())?;
            Ok(format!("serve: drained after shutdown\n{stats}"))
        }
        Command::Client {
            addr,
            port,
            port_file,
            script,
        } => {
            let port = match (port, port_file) {
                (Some(port), _) => port,
                (None, Some(path)) => std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())?
                    .trim()
                    .parse::<u16>()
                    .map_err(|_| format!("bad port number in {}", path.display()))?,
                (None, None) => return Err("client needs --port or --port-file".into()),
            };
            let mut client =
                ServeClient::connect(&format!("{addr}:{port}")).map_err(|e| e.to_string())?;
            let lines: Vec<&str> = script
                .split(';')
                .map(str::trim)
                .filter(|line| !line.is_empty())
                .collect();
            if lines.is_empty() {
                return Err("--script has no requests".into());
            }
            let responses = client.pipeline(&lines).map_err(|e| e.to_string())?;
            let mut out = String::new();
            for (line, response) in lines.iter().zip(&responses) {
                out.push_str(&format!(">> {line}\n{response}\n"));
            }
            Ok(out)
        }
        Command::CacheVerify { path } => {
            let info = read_file_info(&path).map_err(|e| e.to_string())?;
            let report = match &info.record_tag {
                t if t == <ena_core::dse::PointRecord as CacheRecord>::TAG => {
                    verify_file::<ena_core::dse::PointRecord>(&path, info.campaign, &info.model)
                }
                t if t == <MultiNodeRecord as CacheRecord>::TAG => {
                    verify_file::<MultiNodeRecord>(&path, info.campaign, &info.model)
                }
                t if t == <RecoveryRecord as CacheRecord>::TAG => {
                    verify_file::<RecoveryRecord>(&path, info.campaign, &info.model)
                }
                other => {
                    return Err(format!(
                        "unknown record tag '{other}' in {}",
                        path.display()
                    ))
                }
            }
            .map_err(|e| e.to_string())?;
            Ok(format!(
                "cache file {}\n\
                 record: {} model: {} campaign: {:016x}\n\
                 records: {} generation: {} torn_tail: {}",
                path.display(),
                info.record_tag,
                info.model,
                info.campaign,
                report.keys.len(),
                report.generation,
                report.torn_tail,
            ))
        }
        Command::Lint {
            deny_warnings,
            json,
        } => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            let root = ena_lint::find_workspace_root(&cwd)
                .ok_or_else(|| format!("no [workspace] Cargo.toml above {}", cwd.display()))?;
            let opts = ena_lint::Options {
                root,
                config_path: None,
                deny_warnings,
            };
            let report = ena_lint::run(&opts).map_err(|e| e.to_string())?;
            let rendered = if json {
                report.to_json()
            } else {
                report.render()
            };
            if report.failed(deny_warnings) {
                Err(rendered)
            } else {
                Ok(rendered)
            }
        }
        Command::Chiplet { app } => {
            let profile = profile_for(&app).ok_or_else(|| format!("unknown app: {app}"))?;
            let study = chiplet_study(&EhpConfig::paper_baseline(), &profile, 3000, 7);
            Ok(format!(
                "{app}: out-of-chiplet traffic {:.1}%, perf vs monolithic {:.1}%\n\
                 latency: chiplet {:.1} cyc, monolithic {:.1} cyc",
                100.0 * study.out_of_chiplet_fraction,
                100.0 * study.perf_relative_to_monolithic,
                study.chiplet_latency_cycles,
                study.monolithic_latency_cycles,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(s: &str) -> Result<Command, String> {
        parse(s.split_whitespace().map(String::from).collect())
    }

    #[test]
    fn evaluate_parses_all_knobs() {
        let c =
            parse_str("evaluate --app LULESH --cus 256 --mhz 1100 --tbps 4 --miss 0.2 --optimized")
                .unwrap();
        assert_eq!(
            c,
            Command::Evaluate {
                app: "LULESH".into(),
                point: Point {
                    cus: 256,
                    mhz: 1100.0,
                    tbps: 4.0
                },
                miss: Some(0.2),
                optimized: true,
            }
        );
    }

    #[test]
    fn defaults_are_the_paper_baseline() {
        let c = parse_str("suite").unwrap();
        assert_eq!(
            c,
            Command::Suite {
                point: Point::default()
            }
        );
    }

    #[test]
    fn bad_input_is_reported() {
        assert!(parse_str("evaluate").unwrap_err().contains("--app"));
        assert!(parse_str("evaluate --app NotAnApp")
            .unwrap_err()
            .contains("unknown app"));
        assert!(parse_str("evaluate --app CoMD --miss 1.5")
            .unwrap_err()
            .contains("--miss"));
        assert!(parse_str("explode")
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse_str("suite --what")
            .unwrap_err()
            .contains("unrecognized"));
    }

    #[test]
    fn empty_args_mean_help() {
        assert_eq!(parse(Vec::new()).unwrap(), Command::Help);
        assert!(execute(Command::Help).unwrap().contains("commands:"));
    }

    #[test]
    fn evaluate_executes_end_to_end() {
        let out = execute(parse_str("evaluate --app CoMD").unwrap()).unwrap();
        assert!(out.contains("CoMD"));
        assert!(out.contains("package power"));
        assert!(out.contains("peak DRAM"));
    }

    #[test]
    fn suite_lists_all_apps() {
        let out = execute(parse_str("suite --cus 256").unwrap()).unwrap();
        for app in ["MaxFlops", "XSBench", "SNAP"] {
            assert!(out.contains(app), "{out}");
        }
    }

    #[test]
    fn dse_reports_a_best_mean() {
        let out = execute(parse_str("dse --budget 150").unwrap()).unwrap();
        assert!(out.contains("best-mean"));
        assert!(out.contains("per-app oracle"));
    }

    #[test]
    fn sweep_parses_all_knobs() {
        assert_eq!(
            parse_str("sweep --jobs 4 --budget 150 --fine --resume --frontier").unwrap(),
            Command::Sweep {
                budget: 150.0,
                fine: true,
                jobs: 4,
                resume: true,
                frontier: true,
            }
        );
        assert!(parse_str("sweep --jobs 0").unwrap_err().contains("--jobs"));
        assert!(parse_str("sweep --jobs two")
            .unwrap_err()
            .contains("--jobs"));
    }

    #[test]
    fn sweep_reports_telemetry_and_matches_dse() {
        let out = execute(parse_str("sweep --jobs 2 --frontier").unwrap()).unwrap();
        assert!(out.contains("best-mean"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("points/sec"), "{out}");
        assert!(out.contains("per-app oracle"), "{out}");
        assert!(out.contains("Pareto frontier"), "{out}");
        // The engine and the sequential dse agree on the headline line.
        let dse = execute(parse_str("dse").unwrap()).unwrap();
        let best = |report: &str| {
            report
                .lines()
                .find(|l| l.starts_with("best-mean"))
                .expect("best-mean line")
                .to_string()
        };
        assert_eq!(
            best(&out).replace("best-mean:", ""),
            best(&dse).replace("best-mean:", "")
        );
    }

    #[test]
    fn chiplet_reports_the_fig7_quantities() {
        let out = execute(parse_str("chiplet --app SNAP").unwrap()).unwrap();
        assert!(out.contains("out-of-chiplet traffic"));
        assert!(out.contains("perf vs monolithic"));
    }

    #[test]
    fn optimized_evaluation_reports_lower_power() {
        let base = execute(parse_str("evaluate --app LULESH").unwrap()).unwrap();
        let opt = execute(parse_str("evaluate --app LULESH --optimized").unwrap()).unwrap();
        let node_w = |report: &str| -> f64 {
            report
                .lines()
                .find(|l| l.starts_with("node power"))
                .and_then(|l| l.split_whitespace().nth(2))
                .and_then(|v| v.parse().ok())
                .expect("node power line")
        };
        assert!(node_w(&opt) < node_w(&base));
    }

    #[test]
    fn faults_parses_hex_and_decimal_seeds() {
        assert_eq!(
            parse_str("faults --seed 0xBEEF --app SNAP").unwrap(),
            Command::Faults {
                seed: 0xBEEF,
                app: "SNAP".into(),
                transient: false,
            }
        );
        assert_eq!(
            parse_str("faults --seed 42 --transient").unwrap(),
            Command::Faults {
                seed: 42,
                app: "CoMD".into(),
                transient: true,
            }
        );
        assert!(parse_str("faults --seed nope")
            .unwrap_err()
            .contains("--seed"));
        assert!(parse_str("faults --app Nope")
            .unwrap_err()
            .contains("unknown app"));
    }

    #[test]
    fn multinode_parses_all_knobs() {
        assert_eq!(
            parse_str(
                "multinode --nodes 16 --fabric-topology torus --seed 0xBEEF --app SNAP \
                 --sweep --jobs 3 --resume --frontier"
            )
            .unwrap(),
            Command::Multinode {
                nodes: 16,
                topology: FabricKind::Torus,
                seed: 0xBEEF,
                app: "SNAP".into(),
                sweep: true,
                jobs: 3,
                resume: true,
                frontier: true,
                mtbf: None,
                checkpoint_cost: None,
            }
        );
        assert!(parse_str("multinode --nodes 1")
            .unwrap_err()
            .contains("--nodes"));
        assert!(parse_str("multinode --fabric-topology hypercube")
            .unwrap_err()
            .contains("unknown fabric topology"));
        assert!(parse_str("multinode --app Nope")
            .unwrap_err()
            .contains("unknown app"));
        assert!(parse_str("multinode --jobs 0")
            .unwrap_err()
            .contains("--jobs"));
    }

    #[test]
    fn multinode_parses_recovery_knobs() {
        let c = parse_str("multinode --mtbf 96 --checkpoint-cost 3").unwrap();
        match c {
            Command::Multinode {
                mtbf,
                checkpoint_cost,
                ..
            } => {
                assert_eq!(mtbf, Some(96.0));
                assert_eq!(checkpoint_cost, Some(3.0));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse_str("multinode --mtbf -5")
            .unwrap_err()
            .contains("--mtbf"));
        assert!(parse_str("multinode --checkpoint-cost 0")
            .unwrap_err()
            .contains("--checkpoint-cost"));
    }

    #[test]
    fn multinode_defaults_are_the_acceptance_cabinet() {
        let c = parse_str("multinode").unwrap();
        assert_eq!(
            c,
            Command::Multinode {
                nodes: 64,
                topology: FabricKind::DragonflyLite,
                seed: 0xC0FFEE,
                app: "CoMD".into(),
                sweep: false,
                jobs: default_jobs(),
                resume: false,
                frontier: false,
                mtbf: None,
                checkpoint_cost: None,
            }
        );
    }

    #[test]
    fn multinode_campaign_renders_a_report() {
        let out =
            execute(parse_str("multinode --nodes 8 --fabric-topology fat-tree --seed 7").unwrap())
                .unwrap();
        assert!(out.contains("ENA multi-node fabric campaign"), "{out}");
        assert!(out.contains("fabric fat-tree x8"), "{out}");
        assert!(out.contains("analytic cross-check"), "{out}");
        // The straggler's intra-node campaign is embedded.
        assert!(out.contains("ENA fault-injection campaign"), "{out}");
    }

    #[test]
    fn multinode_sweep_reports_cache_and_frontier() {
        let out = execute(parse_str("multinode --sweep --jobs 2 --frontier").unwrap()).unwrap();
        assert!(out.contains("multi-node sweep: 18 points"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        assert!(out.contains("Pareto frontier"), "{out}");
        assert!(out.contains("best throughput"), "{out}");
    }

    #[test]
    fn lint_parses_and_runs_clean_on_this_workspace() {
        assert_eq!(
            parse_str("lint --deny-warnings").unwrap(),
            Command::Lint {
                deny_warnings: true,
                json: false
            }
        );
        let out = execute(parse_str("lint --deny-warnings").unwrap()).unwrap();
        assert!(out.contains("ena-lint:"), "{out}");
        assert!(out.contains("0 diagnostic(s)"), "{out}");
    }

    #[test]
    fn lint_json_emits_machine_readable_output() {
        assert_eq!(
            parse_str("lint --json").unwrap(),
            Command::Lint {
                deny_warnings: false,
                json: true
            }
        );
        let out = execute(parse_str("lint --deny-warnings --json").unwrap()).unwrap();
        assert!(out.starts_with("{\n  \"version\": 1,"), "{out}");
        assert!(out.contains("\"diagnostics\": []"), "{out}");
    }

    #[test]
    fn chaos_parses_defaults_and_knobs() {
        assert_eq!(
            parse_str("chaos").unwrap(),
            Command::Chaos {
                seed: 0xC0FFEE,
                runs: 3,
                jobs: 2
            }
        );
        assert_eq!(
            parse_str("chaos --seed 9 --runs 2 --jobs 4").unwrap(),
            Command::Chaos {
                seed: 9,
                runs: 2,
                jobs: 4
            }
        );
        assert!(parse_str("chaos --runs 0").is_err());
        assert!(parse_str("chaos --jobs 0").is_err());
        assert!(parse_str("chaos --bogus").is_err());
    }

    #[test]
    fn chaos_campaign_reports_held_invariants() {
        let out = execute(parse_str("chaos --seed 11 --runs 2").unwrap()).unwrap();
        assert!(out.contains("chaos campaign seed=0xb"), "{out}");
        assert!(out.contains("invariants: all hold"), "{out}");
        assert!(out.contains("run 0:"), "{out}");
        assert!(out.contains("run 1:"), "{out}");
    }

    #[test]
    fn faults_renders_a_campaign_report() {
        let out = execute(parse_str("faults --seed 7").unwrap()).unwrap();
        assert!(out.contains("fault-injection campaign"), "{out}");
        assert!(out.contains("healthy baseline"));
        assert!(out.contains("availability"));
    }

    #[test]
    fn transient_faults_render_the_ecc_retry_campaign() {
        let out = execute(parse_str("faults --seed 7 --transient").unwrap()).unwrap();
        assert!(out.contains("transient-fault campaign"), "{out}");
        assert!(out.contains("efficiency"), "{out}");
        // Deterministic: same seed, byte-identical report.
        let again = execute(parse_str("faults --seed 7 --transient").unwrap()).unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn multinode_recovery_flags_append_the_daly_section() {
        let plain = execute(parse_str("multinode --nodes 8 --seed 7").unwrap()).unwrap();
        let recovered = execute(
            parse_str("multinode --nodes 8 --seed 7 --mtbf 96 --checkpoint-cost 3").unwrap(),
        )
        .unwrap();
        assert!(!plain.contains("checkpoint/restart recovery"), "{plain}");
        assert!(
            recovered.contains("checkpoint/restart recovery"),
            "{recovered}"
        );
        assert!(recovered.contains("node MTBF 96.0 h"), "{recovered}");
        // --checkpoint-cost alone derives the MTBF from the resilience model.
        let derived =
            execute(parse_str("multinode --nodes 8 --seed 7 --checkpoint-cost 3").unwrap())
                .unwrap();
        assert!(derived.contains("checkpoint/restart recovery"), "{derived}");
    }

    #[test]
    fn multinode_recovery_sweep_crosses_intervals_with_nodes() {
        let out = execute(
            parse_str("multinode --sweep --jobs 2 --mtbf 96 --checkpoint-cost 3 --frontier")
                .unwrap(),
        )
        .unwrap();
        assert!(out.contains("recovery sweep: 30 points"), "{out}");
        assert!(out.contains("best recovered throughput"), "{out}");
        assert!(out.contains("Pareto frontier"), "{out}");
    }

    #[test]
    fn invalid_config_surfaces_cleanly() {
        let err = execute(parse_str("evaluate --app CoMD --cus 416").unwrap()).unwrap_err();
        assert!(err.contains("area budget"), "{err}");
    }

    #[test]
    fn serve_parses_all_knobs_and_rejects_zeros() {
        let c = parse_str(
            "serve --addr 0.0.0.0 --port 7878 --workers 2 --queue 8 --batch 32 \
             --budget 150 --cache /tmp/c --port-file /tmp/p",
        )
        .unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "0.0.0.0".into(),
                port: 7878,
                workers: 2,
                queue: 8,
                batch: 32,
                budget: 150.0,
                cache: Some("/tmp/c".into()),
                port_file: Some("/tmp/p".into()),
            }
        );
        // Defaults: ephemeral port, memory-only store.
        let c = parse_str("serve").unwrap();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1".into(),
                port: 0,
                workers: 4,
                queue: 16,
                batch: 64,
                budget: 160.0,
                cache: None,
                port_file: None,
            }
        );
        assert!(parse_str("serve --workers 0").is_err());
        assert!(parse_str("serve --queue 0").is_err());
        assert!(parse_str("serve --batch 0").is_err());
        assert!(parse_str("serve --port 99999").is_err());
    }

    #[test]
    fn client_requires_a_port_source_and_a_script() {
        let c = parse_str("client --port 7878 --script STATS").unwrap();
        assert_eq!(
            c,
            Command::Client {
                addr: "127.0.0.1".into(),
                port: Some(7878),
                port_file: None,
                script: "STATS".into(),
            }
        );
        assert!(parse_str("client --script STATS").is_err(), "no port");
        assert!(parse_str("client --port 7878").is_err(), "no script");
        let c = parse_str("client --port-file /tmp/p --script SHUTDOWN").unwrap();
        assert_eq!(
            c,
            Command::Client {
                addr: "127.0.0.1".into(),
                port: None,
                port_file: Some("/tmp/p".into()),
                script: "SHUTDOWN".into(),
            }
        );
    }

    #[test]
    fn cache_verify_parses_and_reports() {
        assert_eq!(
            parse_str("cache verify /tmp/x.cache").unwrap(),
            Command::CacheVerify {
                path: "/tmp/x.cache".into()
            }
        );
        assert!(parse_str("cache").is_err());
        assert!(parse_str("cache verify").is_err());
        assert!(parse_str("cache drop /tmp/x").is_err());

        // End-to-end over a real cache file written by the sweep engine.
        let dir = std::env::temp_dir().join("ena-cli-cache-verify");
        let _removed = std::fs::remove_dir_all(&dir);
        let spec = SweepSpec {
            jobs: 1,
            cache: CacheMode::Disk(dir.clone()),
            ..SweepSpec::new(
                DesignSpace {
                    cu_counts: vec![320],
                    clocks: vec![Megahertz::new(1000.0)],
                    bandwidths: vec![GigabytesPerSec::from_terabytes_per_sec(3.0)],
                },
                paper_profiles(),
            )
        };
        SweepEngine::new(Explorer::default()).run(&spec).unwrap();
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "sweep"))
            .expect("sweep wrote a cache file");
        let out = execute(Command::CacheVerify { path: file }).unwrap();
        assert!(out.contains("record: dse-point/1"), "{out}");
        assert!(out.contains("records: 1"), "{out}");
        assert!(out.contains("torn_tail: false"), "{out}");

        // A foreign file is a typed error naming the path.
        let stray = dir.join("not-a-cache.txt");
        std::fs::write(&stray, "hello\n").unwrap();
        let err = execute(Command::CacheVerify {
            path: stray.clone(),
        })
        .unwrap_err();
        assert!(err.contains("header is missing or foreign"), "{err}");
        assert!(err.contains(stray.display().to_string().as_str()), "{err}");
    }
}

//! The `ena` command-line tool. See `ena help`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ena_cli::parse(args).and_then(ena_cli::execute) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{}", ena_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

//! Property-based tests for the CPU models.

use ena_cpu::core::CoreModel;
use ena_cpu::power::{default_pstates, CpuPowerModel};
use ena_cpu::program::CpuProgram;
use ena_cpu::window::{simulate, WindowConfig};
use ena_model::units::Megahertz;
use ena_testkit::prelude::*;

proptest! {
    #[test]
    fn the_dvfs_predictor_is_exact_for_any_program(
        instructions in 1_000u64..500_000,
        mpki in 0.0f64..50.0,
        mlp in 1u32..8,
        measured_mhz in 1000.0f64..3500.0,
        target_mhz in 1000.0f64..3500.0,
    ) {
        let core = CoreModel::default();
        let p = CpuProgram::synthesize(instructions, mpki, mlp);
        let measured = core.run(&p, Megahertz::new(measured_mhz));
        let predicted = core.predict_time(
            &measured,
            Megahertz::new(measured_mhz),
            Megahertz::new(target_mhz),
        );
        let actual = core.run(&p, Megahertz::new(target_mhz)).time;
        let err = (predicted.value() - actual.value()).abs() / actual.value().max(1e-12);
        prop_assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn time_decomposition_is_consistent(
        instructions in 1_000u64..200_000,
        mpki in 0.0f64..50.0,
        mlp in 1u32..8,
    ) {
        let core = CoreModel::default();
        let p = CpuProgram::synthesize(instructions, mpki, mlp);
        let e = core.run(&p, Megahertz::new(2500.0));
        prop_assert!((e.time.value() - e.compute_time.value() - e.memory_time.value()).abs() < 1e-15);
        let frac = e.memory_fraction();
        prop_assert!((0.0..=1.0).contains(&frac));
        prop_assert_eq!(e.instructions, p.instructions());
    }

    #[test]
    fn window_ipc_never_exceeds_width(
        instructions in 1_000u64..50_000,
        mpki in 0.0f64..40.0,
        mlp in 1u32..6,
    ) {
        let cfg = WindowConfig::default();
        let p = CpuProgram::synthesize(instructions, mpki, mlp);
        let r = simulate(&cfg, &p);
        prop_assert!(r.ipc() <= cfg.width + 1e-9, "ipc {}", r.ipc());
        prop_assert_eq!(r.instructions, p.instructions());
    }

    #[test]
    fn energy_sweep_is_well_formed(
        mpki in 0.0f64..40.0,
    ) {
        let core = CoreModel::default();
        let p = CpuProgram::synthesize(100_000, mpki, 2);
        let measured = core.run(&p, Megahertz::new(2500.0));
        let model = CpuPowerModel::default();
        let sweep = model.sweep(&core, &measured, Megahertz::new(2500.0), &default_pstates());
        prop_assert_eq!(sweep.len(), 4);
        for pred in &sweep {
            prop_assert!(pred.time.value() > 0.0);
            prop_assert!(pred.power.value() > 0.0);
            prop_assert!((pred.energy.value() - pred.power.value() * pred.time.value()).abs() < 1e-12);
        }
    }
}

//! CPU execution traces at the interval-model granularity.
//!
//! The leading-loads methodology (paper ref \[39\]) observes that an
//! out-of-order core's execution time decomposes into compute intervals —
//! whose length is frequency-dependent — and *leading load* stalls: the
//! first demand miss of each miss cluster, whose duration is set by the
//! memory, not the core. A [`CpuProgram`] is exactly that decomposition.

/// One execution interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Interval {
    /// `instructions` retired back-to-back at the core's issue rate.
    Compute {
        /// Instructions retired.
        instructions: u64,
    },
    /// A leading load: the core stalls for one memory round trip.
    /// `overlapped` trailing misses ride in its shadow for free.
    LeadingLoad {
        /// Misses hidden behind this one (memory-level parallelism).
        overlapped: u32,
    },
}

/// A CPU program as a sequence of intervals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CpuProgram {
    intervals: Vec<Interval>,
}

impl CpuProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an interval (builder style).
    pub fn push(mut self, interval: Interval) -> Self {
        self.intervals.push(interval);
        self
    }

    /// The intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Total instructions retired (loads count one instruction each).
    pub fn instructions(&self) -> u64 {
        self.intervals
            .iter()
            .map(|iv| match iv {
                Interval::Compute { instructions } => *instructions,
                Interval::LeadingLoad { overlapped } => 1 + u64::from(*overlapped),
            })
            .sum()
    }

    /// Number of leading (non-overlapped) loads.
    pub fn leading_loads(&self) -> u64 {
        self.intervals
            .iter()
            .filter(|iv| matches!(iv, Interval::LeadingLoad { .. }))
            .count() as u64
    }

    /// Synthesizes a program: `misses_per_kilo_instruction` demand misses
    /// per 1000 instructions, clustered with the given memory-level
    /// parallelism, deterministic from the structure alone.
    pub fn synthesize(total_instructions: u64, misses_per_kilo_instruction: f64, mlp: u32) -> Self {
        let mut p = CpuProgram::new();
        if misses_per_kilo_instruction <= 0.0 {
            return p.push(Interval::Compute {
                instructions: total_instructions,
            });
        }
        let cluster = u64::from(mlp.max(1));
        // Instructions between miss clusters.
        let gap = ((1000.0 / misses_per_kilo_instruction) * cluster as f64) as u64;
        let mut remaining = total_instructions;
        while remaining > 0 {
            let chunk = remaining.min(gap.max(1));
            p = p.push(Interval::Compute {
                instructions: chunk,
            });
            remaining -= chunk;
            if remaining > 0 {
                p = p.push(Interval::LeadingLoad {
                    overlapped: mlp.saturating_sub(1),
                });
                remaining = remaining.saturating_sub(cluster);
            }
        }
        p
    }
}

impl FromIterator<Interval> for CpuProgram {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        Self {
            intervals: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_sums_intervals() {
        let p = CpuProgram::new()
            .push(Interval::Compute { instructions: 100 })
            .push(Interval::LeadingLoad { overlapped: 3 })
            .push(Interval::Compute { instructions: 50 });
        assert_eq!(p.instructions(), 154);
        assert_eq!(p.leading_loads(), 1);
    }

    #[test]
    fn synthesis_hits_the_requested_miss_rate() {
        let p = CpuProgram::synthesize(1_000_000, 5.0, 2);
        let mpki = p.leading_loads() as f64 * 2.0 / (p.instructions() as f64 / 1000.0);
        assert!((mpki - 5.0).abs() < 0.5, "mpki = {mpki}");
    }

    #[test]
    fn compute_only_synthesis_has_no_stalls() {
        let p = CpuProgram::synthesize(10_000, 0.0, 4);
        assert_eq!(p.leading_loads(), 0);
        assert_eq!(p.instructions(), 10_000);
    }
}

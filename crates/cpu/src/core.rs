//! The leading-loads CPU performance model (paper ref \[39\]).
//!
//! Execution time splits into a frequency-scaled compute part and a
//! frequency-*independent* memory part:
//!
//! `T(f) = compute_cycles / f + leading_loads x memory_latency`
//!
//! Measuring a program once (at any frequency) yields both terms, after
//! which performance at *any* DVFS state — or any memory latency, e.g.
//! behind the chiplet NoC — is predicted analytically. This is how the
//! paper's methodology scales measured CPU behaviour to future hardware.

use ena_model::units::{Megahertz, Seconds};

use crate::program::{CpuProgram, Interval};

/// Microarchitectural parameters of one core.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreModel {
    /// Sustained instructions per cycle when not memory-stalled.
    pub issue_ipc: f64,
    /// Average memory round-trip time for a demand miss.
    pub memory_latency: Seconds,
}

impl Default for CoreModel {
    fn default() -> Self {
        Self {
            issue_ipc: 3.0,
            // ~80 ns to in-package DRAM through the interposer.
            memory_latency: Seconds::new(80e-9),
        }
    }
}

/// A measured/predicted execution summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuEstimate {
    /// Total execution time.
    pub time: Seconds,
    /// The frequency-scaled portion (compute).
    pub compute_time: Seconds,
    /// The frequency-independent portion (leading-load stalls).
    pub memory_time: Seconds,
    /// Instructions retired.
    pub instructions: u64,
}

impl CpuEstimate {
    /// Achieved instructions per second.
    pub fn ips(&self) -> f64 {
        if self.time.value() == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.time.value()
        }
    }

    /// Memory-stall share of execution time.
    pub fn memory_fraction(&self) -> f64 {
        if self.time.value() == 0.0 {
            0.0
        } else {
            self.memory_time.value() / self.time.value()
        }
    }
}

impl CoreModel {
    /// Executes `program` at `frequency` under the interval model.
    pub fn run(&self, program: &CpuProgram, frequency: Megahertz) -> CpuEstimate {
        let mut compute_cycles = 0.0f64;
        let mut stalls = 0u64;
        let mut instructions = 0u64;
        for iv in program.intervals() {
            match *iv {
                Interval::Compute { instructions: n } => {
                    compute_cycles += n as f64 / self.issue_ipc;
                    instructions += n;
                }
                Interval::LeadingLoad { overlapped } => {
                    stalls += 1;
                    instructions += 1 + u64::from(overlapped);
                }
            }
        }
        let compute_time = Seconds::new(compute_cycles / frequency.hertz());
        let memory_time = self.memory_latency * stalls as f64;
        CpuEstimate {
            time: compute_time + memory_time,
            compute_time,
            memory_time,
            instructions,
        }
    }

    /// The leading-loads DVFS predictor: from one measurement at
    /// `measured_at`, predict the execution time at `target` frequency
    /// without re-running the program.
    pub fn predict_time(
        &self,
        measured: &CpuEstimate,
        measured_at: Megahertz,
        target: Megahertz,
    ) -> Seconds {
        let scale = measured_at.hertz() / target.hertz();
        measured.compute_time * scale + measured.memory_time
    }

    /// Predicts the execution time if the average memory latency changed
    /// (e.g. remote-chiplet traffic or external-memory misses).
    pub fn predict_with_latency(&self, measured: &CpuEstimate, new_latency: Seconds) -> Seconds {
        let stalls = if self.memory_latency.value() == 0.0 {
            0.0
        } else {
            measured.memory_time.value() / self.memory_latency.value()
        };
        measured.compute_time + new_latency * stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(mpki: f64) -> CpuProgram {
        CpuProgram::synthesize(1_000_000, mpki, 2)
    }

    #[test]
    fn compute_bound_code_scales_linearly_with_frequency() {
        let core = CoreModel::default();
        let p = program(0.0);
        let slow = core.run(&p, Megahertz::new(1250.0));
        let fast = core.run(&p, Megahertz::new(2500.0));
        let ratio = slow.time.value() / fast.time.value();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn memory_bound_code_barely_responds_to_frequency() {
        let core = CoreModel::default();
        let p = program(40.0);
        let slow = core.run(&p, Megahertz::new(1250.0));
        let fast = core.run(&p, Megahertz::new(2500.0));
        let speedup = slow.time.value() / fast.time.value();
        assert!(speedup < 1.3, "speedup = {speedup}");
        assert!(slow.memory_fraction() > 0.5);
    }

    #[test]
    fn the_predictor_is_exact_under_the_interval_model() {
        // Measure at 2.5 GHz, predict 1.5 GHz, compare to a real run.
        let core = CoreModel::default();
        for mpki in [0.0, 2.0, 10.0, 40.0] {
            let p = program(mpki);
            let measured = core.run(&p, Megahertz::new(2500.0));
            let predicted =
                core.predict_time(&measured, Megahertz::new(2500.0), Megahertz::new(1500.0));
            let actual = core.run(&p, Megahertz::new(1500.0)).time;
            let err = (predicted.value() - actual.value()).abs() / actual.value();
            assert!(err < 1e-9, "mpki {mpki}: err {err}");
        }
    }

    #[test]
    fn latency_prediction_tracks_memory_boundness() {
        let core = CoreModel::default();
        let p = program(20.0);
        let measured = core.run(&p, Megahertz::new(2500.0));
        // Double the memory latency: memory time doubles, compute fixed.
        let predicted = core.predict_with_latency(&measured, Seconds::new(160e-9));
        let expect = measured.compute_time.value() + 2.0 * measured.memory_time.value();
        assert!((predicted.value() - expect).abs() < 1e-15);
    }

    #[test]
    fn ips_reflects_issue_rate_for_clean_code() {
        let core = CoreModel::default();
        let p = program(0.0);
        let e = core.run(&p, Megahertz::new(2500.0));
        let ipc = e.ips() / 2.5e9;
        assert!((ipc - 3.0).abs() < 1e-9, "ipc = {ipc}");
    }
}

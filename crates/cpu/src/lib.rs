//! CPU-side performance and power modeling for the ENA toolkit.
//!
//! The EHP's 32 CPU cores exist for "serial or irregular code sections and
//! legacy applications" (paper Section II-A.1), and the paper's
//! methodology scales *measured* CPU behaviour to future hardware with two
//! published models that this crate implements:
//!
//! - [`core`] — the leading-loads performance predictor (paper ref \[39\]):
//!   decompose execution into frequency-scaled compute and
//!   frequency-independent memory stalls, then predict any DVFS state or
//!   memory latency from one measurement.
//! - [`power`] — PPEP-style DVFS power/energy prediction (paper ref \[40\]).
//! - [`window`] — a small out-of-order-window timing simulator that
//!   validates the leading-loads decomposition mechanistically.
//! - [`program`] — the interval-model execution traces both views share.
//!
//! # Example
//!
//! ```
//! use ena_cpu::core::CoreModel;
//! use ena_cpu::program::CpuProgram;
//! use ena_model::units::Megahertz;
//!
//! let core = CoreModel::default();
//! let program = CpuProgram::synthesize(1_000_000, 10.0, 2);
//!
//! // Measure once at 2.5 GHz...
//! let measured = core.run(&program, Megahertz::new(2500.0));
//! // ...predict 1.2 GHz without re-running.
//! let predicted = core.predict_time(&measured, Megahertz::new(2500.0), Megahertz::new(1200.0));
//! let actual = core.run(&program, Megahertz::new(1200.0)).time;
//! assert!((predicted.value() - actual.value()).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod core;
pub mod power;
pub mod program;
pub mod window;

pub use crate::core::{CoreModel, CpuEstimate};
pub use power::{CpuPowerModel, PState};
pub use program::{CpuProgram, Interval};

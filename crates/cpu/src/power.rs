//! PPEP-style CPU DVFS power/energy prediction (paper ref \[40\]).
//!
//! From one measurement of a program (time + activity) at one
//! voltage/frequency state, predict power, execution time, and energy at
//! every other state — the basis for choosing DVFS points and for the
//! race-to-idle-vs-crawl energy question.

use ena_model::units::{Joules, Megahertz, Seconds, Volts, Watts};

use crate::core::{CoreModel, CpuEstimate};

/// A CPU DVFS state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PState {
    /// Core frequency.
    pub frequency: Megahertz,
    /// Supply voltage.
    pub voltage: Volts,
}

/// The paper-era CPU DVFS table (per core-pair/module).
pub fn default_pstates() -> Vec<PState> {
    vec![
        PState {
            frequency: Megahertz::new(1200.0),
            voltage: Volts::new(0.80),
        },
        PState {
            frequency: Megahertz::new(1800.0),
            voltage: Volts::new(0.90),
        },
        PState {
            frequency: Megahertz::new(2500.0),
            voltage: Volts::new(1.00),
        },
        PState {
            frequency: Megahertz::new(3200.0),
            voltage: Volts::new(1.15),
        },
    ]
}

/// Per-core power coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuPowerModel {
    /// Switched energy per instruction at 1.0 V, joules.
    pub energy_per_instruction: f64,
    /// Leakage at 1.0 V, watts.
    pub leakage_w: f64,
    /// Idle (clock-gated) power floor, watts.
    pub idle_w: f64,
}

impl Default for CpuPowerModel {
    fn default() -> Self {
        Self {
            energy_per_instruction: 0.12e-9,
            leakage_w: 0.25,
            idle_w: 0.05,
        }
    }
}

/// Predicted execution at one P-state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PStatePrediction {
    /// The state predicted.
    pub state: PState,
    /// Predicted execution time.
    pub time: Seconds,
    /// Predicted average power while running.
    pub power: Watts,
    /// Predicted energy to completion.
    pub energy: Joules,
}

impl CpuPowerModel {
    /// Average power for a run with `estimate` timing at `state`.
    pub fn power(&self, estimate: &CpuEstimate, state: PState) -> Watts {
        let v2 = (state.voltage.value() / 1.0).powi(2);
        let dynamic = if estimate.time.value() > 0.0 {
            self.energy_per_instruction * v2 * estimate.instructions as f64 / estimate.time.value()
        } else {
            0.0
        };
        Watts::new(dynamic + self.leakage_w * state.voltage.value() + self.idle_w)
    }

    /// Predicts time/power/energy at every P-state from one measurement.
    pub fn sweep(
        &self,
        core: &CoreModel,
        measured: &CpuEstimate,
        measured_at: Megahertz,
        states: &[PState],
    ) -> Vec<PStatePrediction> {
        states
            .iter()
            .map(|&state| {
                let time = core.predict_time(measured, measured_at, state.frequency);
                let scaled = CpuEstimate {
                    time,
                    compute_time: measured.compute_time
                        * (measured_at.hertz() / state.frequency.hertz()),
                    memory_time: measured.memory_time,
                    instructions: measured.instructions,
                };
                let power = self.power(&scaled, state);
                PStatePrediction {
                    state,
                    time,
                    power,
                    energy: power.energy_over(time),
                }
            })
            .collect()
    }

    /// The minimum-energy P-state for a measured program, or `None` if
    /// `states` is empty.
    pub fn energy_optimal(
        &self,
        core: &CoreModel,
        measured: &CpuEstimate,
        measured_at: Megahertz,
        states: &[PState],
    ) -> Option<PStatePrediction> {
        self.sweep(core, measured, measured_at, states)
            .into_iter()
            .min_by(|a, b| a.energy.value().total_cmp(&b.energy.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CpuProgram;

    fn measure(mpki: f64) -> (CoreModel, CpuEstimate) {
        let core = CoreModel::default();
        let p = CpuProgram::synthesize(1_000_000, mpki, 2);
        let e = core.run(&p, Megahertz::new(2500.0));
        (core, e)
    }

    #[test]
    fn power_rises_with_voltage_and_frequency() {
        let (core, e) = measure(2.0);
        let model = CpuPowerModel::default();
        let sweep = model.sweep(&core, &e, Megahertz::new(2500.0), &default_pstates());
        for pair in sweep.windows(2) {
            assert!(pair[1].power.value() > pair[0].power.value());
            assert!(pair[1].time.value() < pair[0].time.value());
        }
    }

    #[test]
    fn compute_bound_code_prefers_low_voltage_for_energy() {
        // Energy = P x T: with V^2 dynamic scaling and time ~ 1/f, the
        // lowest-voltage state wins for compute-bound code.
        let (core, e) = measure(0.0);
        let model = CpuPowerModel::default();
        let best = model
            .energy_optimal(&core, &e, Megahertz::new(2500.0), &default_pstates())
            .unwrap();
        assert_eq!(best.state.frequency, Megahertz::new(1200.0));
    }

    #[test]
    fn boosting_frequency_pays_off_only_for_compute_bound_code() {
        let model = CpuPowerModel::default();
        let states = default_pstates();
        let study = |mpki: f64| {
            let (core, e) = measure(mpki);
            let sweep = model.sweep(&core, &e, Megahertz::new(2500.0), &states);
            let speedup = sweep[0].time.value() / sweep.last().unwrap().time.value();
            let energy_cost = sweep.last().unwrap().energy.value() / sweep[0].energy.value();
            (speedup, energy_cost)
        };
        let (speedup_c, cost_c) = study(0.0);
        let (speedup_m, cost_m) = study(40.0);
        // Compute-bound: the top state is 2.67x faster for a modest energy
        // premium. Memory-bound: barely faster, comparable premium.
        assert!(speedup_c > 2.0, "compute speedup {speedup_c}");
        assert!(speedup_m < 1.3, "memory speedup {speedup_m}");
        assert!((1.0..2.0).contains(&cost_c), "compute cost {cost_c}");
        assert!((1.0..2.0).contains(&cost_m), "memory cost {cost_m}");
        // Energy per unit speedup is far better for compute-bound code.
        assert!(cost_c / speedup_c < cost_m / speedup_m);
    }

    #[test]
    fn energy_is_power_times_time() {
        let (core, e) = measure(5.0);
        let model = CpuPowerModel::default();
        for p in model.sweep(&core, &e, Megahertz::new(2500.0), &default_pstates()) {
            let expect = p.power.value() * p.time.value();
            assert!((p.energy.value() - expect).abs() < 1e-12);
        }
    }
}

//! A small out-of-order-window timing simulator that validates the
//! leading-loads analytic model mechanistically.
//!
//! Instructions dispatch in order into a reorder window, complete out of
//! order (loads after the memory latency), and retire in order. Misses
//! that fit in the window together overlap — exactly the behaviour the
//! leading-loads decomposition assumes — while window-filling stalls
//! emerge naturally.

use crate::program::{CpuProgram, Interval};

/// Configuration of the simulated window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowConfig {
    /// Reorder-window capacity in instructions.
    pub window: usize,
    /// Dispatch/retire width in instructions per cycle.
    pub width: f64,
    /// Demand-miss latency in cycles.
    pub memory_cycles: f64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            window: 192,
            width: 3.0,
            memory_cycles: 200.0,
        }
    }
}

/// Result of a window simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowResult {
    /// Total cycles to retire everything.
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: u64,
}

impl WindowResult {
    /// Achieved instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }
}

/// Runs `program` through the window model.
pub fn simulate(config: &WindowConfig, program: &CpuProgram) -> WindowResult {
    // Expand into per-instruction latencies (1 cycle or a memory miss).
    // Window tracking only needs each instruction's retire time, kept in a
    // ring of the last `window` entries.
    let mut retire_ring: Vec<f64> = vec![0.0; config.window];
    let mut count: u64 = 0;
    let mut last_dispatch = 0.0f64;
    let mut last_retire = 0.0f64;

    let mut step =
        |latency: f64, count: &mut u64, last_dispatch: &mut f64, last_retire: &mut f64| {
            let slot = (*count as usize) % config.window;
            // Dispatch: in order, limited by width and window occupancy (the
            // instruction `window` places back must have retired).
            let window_free = retire_ring[slot];
            let dispatch = (*last_dispatch + 1.0 / config.width).max(window_free);
            let complete = dispatch + latency;
            // Retire: in order, at most `width` per cycle.
            let retire = complete.max(*last_retire + 1.0 / config.width);
            retire_ring[slot] = retire;
            *last_dispatch = dispatch;
            *last_retire = retire;
            *count += 1;
        };

    for iv in program.intervals() {
        match *iv {
            Interval::Compute { instructions } => {
                for _ in 0..instructions {
                    step(1.0, &mut count, &mut last_dispatch, &mut last_retire);
                }
            }
            Interval::LeadingLoad { overlapped } => {
                for _ in 0..=overlapped {
                    step(
                        config.memory_cycles,
                        &mut count,
                        &mut last_dispatch,
                        &mut last_retire,
                    );
                }
            }
        }
    }

    WindowResult {
        cycles: last_retire,
        instructions: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreModel;
    use ena_model::units::{Megahertz, Seconds};

    #[test]
    fn clean_code_retires_at_full_width() {
        let p = CpuProgram::synthesize(30_000, 0.0, 1);
        let r = simulate(&WindowConfig::default(), &p);
        assert!((r.ipc() - 3.0).abs() < 0.01, "ipc = {}", r.ipc());
    }

    #[test]
    fn misses_within_the_window_overlap() {
        // One cluster of 4 misses: total stall ~ one memory latency, not 4.
        let cfg = WindowConfig::default();
        let p = CpuProgram::new()
            .push(Interval::Compute { instructions: 100 })
            .push(Interval::LeadingLoad { overlapped: 3 })
            .push(Interval::Compute { instructions: 100 });
        let r = simulate(&cfg, &p);
        let serial_estimate = 200.0 / 3.0 + cfg.memory_cycles;
        assert!(
            (r.cycles - serial_estimate).abs() < 0.1 * serial_estimate,
            "cycles {} vs estimate {serial_estimate}",
            r.cycles
        );
    }

    #[test]
    fn the_leading_loads_model_matches_the_window_simulator() {
        // The whole point of ref [39]: the analytic decomposition tracks a
        // mechanistic OOO model across memory intensities, once the
        // analytic latency is the *exposed* latency (raw miss latency
        // minus the window drain the OOO core hides: window / width).
        let freq = Megahertz::new(2500.0);
        let cfg = WindowConfig {
            memory_cycles: 200.0,
            ..WindowConfig::default()
        };
        let exposed_cycles = cfg.memory_cycles - cfg.window as f64 / cfg.width;
        let core = CoreModel {
            issue_ipc: cfg.width,
            memory_latency: Seconds::new(exposed_cycles / freq.hertz()),
        };
        // Valid domain: miss clusters farther apart than the window, so
        // only intra-cluster misses overlap (the model's assumption).
        for mpki in [0.5, 2.0, 8.0] {
            let p = CpuProgram::synthesize(200_000, mpki, 2);
            let sim_cycles = simulate(&cfg, &p).cycles;
            let analytic_cycles = core.run(&p, freq).time.value() * freq.hertz();
            let err = (sim_cycles - analytic_cycles).abs() / sim_cycles;
            assert!(
                err < 0.1,
                "mpki {mpki}: sim {sim_cycles}, analytic {analytic_cycles}"
            );
        }
        // Outside that domain the window overlaps *across* clusters and
        // the analytic decomposition turns pessimistic — a documented
        // limitation of the leading-loads family.
        let dense = CpuProgram::synthesize(200_000, 40.0, 2);
        let sim = simulate(&cfg, &dense).cycles;
        let analytic = core.run(&dense, freq).time.value() * freq.hertz();
        assert!(
            analytic > sim,
            "analytic should be pessimistic for dense misses"
        );
    }

    #[test]
    fn a_tiny_window_exposes_serialization() {
        // With a window smaller than the miss cluster, misses serialize
        // and the analytic model (which assumes they overlap) is optimistic.
        let small = WindowConfig {
            window: 2,
            ..WindowConfig::default()
        };
        let big = WindowConfig::default();
        let p = CpuProgram::new()
            .push(Interval::LeadingLoad { overlapped: 7 })
            .push(Interval::Compute { instructions: 10 });
        let slow = simulate(&small, &p).cycles;
        let fast = simulate(&big, &p).cycles;
        assert!(slow > 2.0 * fast, "small {slow}, big {fast}");
    }
}

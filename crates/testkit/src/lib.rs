//! Hermetic verification substrate for the ENA workspace.
//!
//! The paper's evaluation is entirely model-based, so the reproduction's
//! credibility rests on deterministic, self-contained verification. This
//! crate replaces every external dev-dependency the workspace used to pull
//! from a registry with in-tree equivalents:
//!
//! | Module | Replaces | Purpose |
//! |---|---|---|
//! | [`rng`] | `rand` | Seedable SplitMix64 / xoshiro256++ PRNG |
//! | [`prop`] (+ [`collection`], [`sample`]) | `proptest` | Property harness with pinned seeds |
//! | [`golden`] | — | Figure/table regression against `artifacts/` |
//! | [`timing`] | `criterion` | Wall-clock micro-benchmark harness (feature `timing`) |
//!
//! # Seed policy
//!
//! Every property test derives a stable base seed from its fully-qualified
//! test name, so runs are reproducible across machines and reorderings of
//! the suite. Each case gets an independent seed from a SplitMix64 stream
//! over the base seed. On failure the harness prints both seeds; set
//! `ENA_TESTKIT_SEED` to replay (shrinking-lite), and `ENA_TESTKIT_CASES`
//! to change the case count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod collection;
pub mod golden;
mod macros;
pub mod prelude;
pub mod prop;
pub mod rng;
pub mod sample;
#[cfg(feature = "timing")]
pub mod timing;
pub mod transport;

//! Deterministic in-process byte transport: a connected pair of duplex
//! pipe ends implementing `Read + Write`, mirroring a TCP stream's
//! blocking semantics without sockets, ports, or the OS network stack.
//!
//! `ena-serve`'s connection handlers are generic over `Read + Write`,
//! so driving them through a [`pair`] makes protocol, batching, and
//! single-flight behavior testable hermetically and deterministically:
//! the only nondeterminism left is thread interleaving, which the
//! server's invariants must tolerate anyway.
//!
//! Close semantics match a dropped socket: when one end is dropped, the
//! peer's reads drain the remaining buffered bytes and then see EOF
//! (`Ok(0)`), and the peer's writes fail with `BrokenPipe`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One direction of the duplex pipe: a bounded-by-usage byte queue plus
/// a closed flag.
#[derive(Debug, Default)]
struct ChannelState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Channel {
    state: Mutex<ChannelState>,
    readable: Condvar,
}

impl Channel {
    fn lock(&self) -> MutexGuard<'_, ChannelState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }
}

/// One end of a connected in-process duplex pipe (see [`pair`]).
///
/// Blocking `Read`/`Write` with socket-like EOF and `BrokenPipe`
/// behavior; `Send`, so one end can move into a server thread while the
/// test drives the other.
#[derive(Debug)]
pub struct PipeEnd {
    /// Bytes the peer wrote, for us to read.
    rx: Arc<Channel>,
    /// Bytes we write, for the peer to read.
    tx: Arc<Channel>,
}

/// Creates a connected pair of pipe ends: bytes written to one end are
/// read from the other, in order, both directions.
pub fn pair() -> (PipeEnd, PipeEnd) {
    let a_to_b = Arc::new(Channel::default());
    let b_to_a = Arc::new(Channel::default());
    (
        PipeEnd {
            rx: b_to_a.clone(),
            tx: a_to_b.clone(),
        },
        PipeEnd {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl Read for PipeEnd {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self.rx.lock();
        while state.buf.is_empty() && !state.closed {
            state = self
                .rx
                .readable
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if state.buf.is_empty() {
            return Ok(0); // peer dropped and the queue is drained: EOF
        }
        let n = out.len().min(state.buf.len());
        for slot in out.iter_mut().take(n) {
            // The loop bound is the queue length, so the queue cannot be
            // empty here; an empty queue would be an internal bug worth
            // surfacing over silently short-reading.
            let Some(byte) = state.buf.pop_front() else {
                break;
            };
            *slot = byte;
        }
        Ok(n)
    }
}

impl Write for PipeEnd {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        let mut state = self.tx.lock();
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer end of the in-process pipe was dropped",
            ));
        }
        state.buf.extend(bytes.iter().copied());
        self.tx.readable.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(()) // writes land in the shared queue immediately
    }
}

impl Drop for PipeEnd {
    fn drop(&mut self) {
        // Half-close both directions, like a socket teardown: the peer
        // reads out the buffered tail then EOF, and its writes fail.
        self.tx.close();
        self.rx.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_in_order() {
        let (mut a, mut b) = pair();
        a.write_all(b"hello").unwrap();
        a.write_all(b" world").unwrap();
        let mut buf = [0u8; 11];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");

        b.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn drop_drains_then_eofs_and_breaks_writes() {
        let (mut a, mut b) = pair();
        a.write_all(b"tail").unwrap();
        drop(a);
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"tail");
        let err = b.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn blocking_read_wakes_on_cross_thread_write() {
        let (mut a, mut b) = pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"abc").unwrap();
        assert_eq!(t.join().unwrap(), *b"abc");
    }
}

//! One-stop import for property tests, mirroring `proptest::prelude`.
//!
//! ```
//! use ena_testkit::prelude::*;
//! ```

pub use crate::prop::{
    any, Any, Arbitrary, BoxedStrategy, Just, Map, ProptestConfig, Runner, Strategy, TestCaseError,
    Union,
};
pub use crate::rng::{SplitMix64, StdRng};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

//! Golden-artifact regression: compare regenerated figure/table reports
//! against the digitized paper data under `artifacts/`.
//!
//! Reports are plain text tables. Comparison is token-based: both sides
//! are split into whitespace-separated tokens, numeric tokens must agree
//! within a per-figure [`Tolerance`], and non-numeric tokens (labels,
//! headers, units) must match verbatim. Mismatches come back as a
//! readable expected-vs-modeled diff instead of a bare boolean.

use std::fmt;
use std::path::{Path, PathBuf};

/// Per-figure numeric tolerance: a value passes when
/// `|actual - expected| <= abs + rel * |expected|`.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Relative tolerance (fraction of the expected magnitude).
    pub rel: f64,
    /// Absolute tolerance floor.
    pub abs: f64,
}

impl Tolerance {
    /// An exact match (still robust to `1` vs `1.000` formatting).
    pub const EXACT: Tolerance = Tolerance { rel: 0.0, abs: 0.0 };

    /// A tolerance of `rel` relative with a small absolute floor.
    pub const fn relative(rel: f64) -> Self {
        Self { rel, abs: 1e-9 }
    }

    fn accepts(&self, expected: f64, actual: f64) -> bool {
        (actual - expected).abs() <= self.abs + self.rel * expected.abs()
    }
}

/// One divergence between the golden and regenerated reports.
#[derive(Clone, Debug)]
pub enum Mismatch {
    /// A numeric token outside tolerance.
    Value {
        /// 1-based line number in the golden file.
        line: usize,
        /// 1-based numeric-token position within the line.
        column: usize,
        /// Golden (digitized) value.
        expected: f64,
        /// Regenerated (modeled) value.
        actual: f64,
    },
    /// A label/header token that differs, or a numeric/text token kind
    /// conflict.
    Token {
        /// 1-based line number in the golden file.
        line: usize,
        /// Golden token.
        expected: String,
        /// Regenerated token.
        actual: String,
    },
    /// The two reports have different numbers of data lines.
    LineCount {
        /// Data lines in the golden file.
        expected: usize,
        /// Data lines in the regenerated report.
        actual: usize,
    },
}

/// The outcome of a failed comparison; `Display` renders the diff.
#[derive(Clone, Debug)]
pub struct GoldenDiff {
    name: String,
    mismatches: Vec<Mismatch>,
    checked_values: usize,
}

impl GoldenDiff {
    /// All recorded mismatches.
    pub fn mismatches(&self) -> &[Mismatch] {
        &self.mismatches
    }
}

impl fmt::Display for GoldenDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "golden mismatch in `{}`: {} of {} checked values diverged",
            self.name,
            self.mismatches.len(),
            self.checked_values
        )?;
        const SHOWN: usize = 20;
        for m in self.mismatches.iter().take(SHOWN) {
            match m {
                Mismatch::Value {
                    line,
                    column,
                    expected,
                    actual,
                } => {
                    let rel = if *expected != 0.0 {
                        format!(
                            " (rel err {:.3}%)",
                            100.0 * (actual - expected).abs() / expected.abs()
                        )
                    } else {
                        String::new()
                    };
                    writeln!(
                        f,
                        "  line {line}, value #{column}: expected {expected}, modeled {actual}{rel}"
                    )?;
                }
                Mismatch::Token {
                    line,
                    expected,
                    actual,
                } => {
                    writeln!(
                        f,
                        "  line {line}: expected token `{expected}`, got `{actual}`"
                    )?;
                }
                Mismatch::LineCount { expected, actual } => {
                    writeln!(f, "  data line count: expected {expected}, got {actual}")?;
                }
            }
        }
        if self.mismatches.len() > SHOWN {
            writeln!(f, "  ... and {} more", self.mismatches.len() - SHOWN)?;
        }
        Ok(())
    }
}

/// A parsed report line: its verbatim tokens with numerics decoded.
#[derive(Clone, Debug)]
struct DataLine {
    /// 1-based line number in the source text.
    number: usize,
    tokens: Vec<Token>,
}

#[derive(Clone, Debug)]
enum Token {
    Number(f64),
    Text(String),
}

/// Splits a report into comparable data lines, dropping blank lines and
/// `----` separator rules (which carry no data and whose width may shift
/// with formatting).
fn parse(text: &str) -> Vec<DataLine> {
    text.lines()
        .enumerate()
        .filter_map(|(i, line)| {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.chars().all(|c| c == '-') {
                return None;
            }
            let tokens = trimmed
                .split_whitespace()
                .map(|tok| match tok.parse::<f64>() {
                    Ok(v) if v.is_finite() => Token::Number(v),
                    _ => Token::Text(tok.to_string()),
                })
                .collect();
            Some(DataLine {
                number: i + 1,
                tokens,
            })
        })
        .collect()
}

/// Compares a regenerated report against its golden text.
///
/// `name` labels the diff (e.g. `"fig8"`). Returns `Ok(checked_values)`
/// with the count of numeric comparisons performed, or the full diff.
pub fn compare(
    name: &str,
    golden: &str,
    actual: &str,
    tolerance: Tolerance,
) -> Result<usize, GoldenDiff> {
    let golden_lines = parse(golden);
    let actual_lines = parse(actual);
    let mut mismatches = Vec::new();
    let mut checked = 0usize;

    if golden_lines.len() != actual_lines.len() {
        mismatches.push(Mismatch::LineCount {
            expected: golden_lines.len(),
            actual: actual_lines.len(),
        });
    }

    for (g, a) in golden_lines.iter().zip(&actual_lines) {
        let mut col = 0usize;
        let pairs = g.tokens.iter().zip(&a.tokens);
        for (gt, at) in pairs {
            match (gt, at) {
                (Token::Number(e), Token::Number(v)) => {
                    col += 1;
                    checked += 1;
                    if !tolerance.accepts(*e, *v) {
                        mismatches.push(Mismatch::Value {
                            line: g.number,
                            column: col,
                            expected: *e,
                            actual: *v,
                        });
                    }
                }
                (Token::Text(e), Token::Text(v)) if e == v => {}
                _ => {
                    mismatches.push(Mismatch::Token {
                        line: g.number,
                        expected: render(gt),
                        actual: render(at),
                    });
                }
            }
        }
        if g.tokens.len() != a.tokens.len() {
            mismatches.push(Mismatch::Token {
                line: g.number,
                expected: format!("{} tokens", g.tokens.len()),
                actual: format!("{} tokens", a.tokens.len()),
            });
        }
    }

    if mismatches.is_empty() {
        Ok(checked)
    } else {
        Err(GoldenDiff {
            name: name.to_string(),
            mismatches,
            checked_values: checked,
        })
    }
}

fn render(t: &Token) -> String {
    match t {
        Token::Number(v) => v.to_string(),
        Token::Text(s) => s.clone(),
    }
}

/// Locates the repository's `artifacts/` directory.
///
/// Honors `ENA_ARTIFACTS_DIR`, then walks up from the current directory
/// (tests run with the package root as cwd, so this finds the workspace
/// root from any crate).
///
/// # Panics
///
/// Panics when no `artifacts/` directory exists on the ancestor path.
pub fn artifacts_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("ENA_ARTIFACTS_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::current_dir().expect("current dir");
    let mut cur: &Path = &start;
    loop {
        let candidate = cur.join("artifacts");
        if candidate.is_dir() {
            return candidate;
        }
        cur = cur
            .parent()
            .unwrap_or_else(|| panic!("no artifacts/ directory above {}", start.display()));
    }
}

/// Loads a golden artifact by experiment name (`"fig8"` reads
/// `artifacts/fig8.txt`).
///
/// # Panics
///
/// Panics when the file is missing or unreadable.
pub fn load(name: &str) -> String {
    let path = artifacts_dir().join(format!("{name}.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden artifact {}: {e}", path.display()))
}

/// Asserts that `actual` matches the named golden artifact within
/// `tolerance`, panicking with the readable diff otherwise.
pub fn assert_matches(name: &str, actual: &str, tolerance: Tolerance) {
    if let Err(diff) = compare(name, &load(name), actual, tolerance) {
        panic!("{diff}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str =
        "Fig. X: demo\n\napp  a  b\n----------\nfoo  1.000  2.5\nbar  3.0    4.0\n";

    #[test]
    fn identical_reports_match_exactly() {
        assert_eq!(
            compare("demo", GOLDEN, GOLDEN, Tolerance::EXACT).unwrap(),
            4
        );
    }

    #[test]
    fn formatting_differences_are_ignored() {
        let actual = "Fig. X: demo\n\napp  a  b\n---\nfoo  1  2.50\nbar  3  4\n";
        assert!(compare("demo", GOLDEN, actual, Tolerance::EXACT).is_ok());
    }

    #[test]
    fn out_of_tolerance_values_produce_a_readable_diff() {
        let actual = GOLDEN.replace("2.5", "2.9");
        let err = compare("demo", GOLDEN, &actual, Tolerance::relative(0.01)).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("expected 2.5, modeled 2.9"), "{rendered}");
        assert_eq!(err.mismatches().len(), 1);
        // ... and 16 % drift passes a 20 % tolerance.
        assert!(compare("demo", GOLDEN, &actual, Tolerance::relative(0.2)).is_ok());
    }

    #[test]
    fn label_changes_are_caught() {
        let actual = GOLDEN.replace("bar", "baz");
        let err = compare("demo", GOLDEN, &actual, Tolerance::relative(0.5)).unwrap_err();
        assert!(err.to_string().contains("`bar`"), "{err}");
    }

    #[test]
    fn missing_lines_are_caught() {
        let actual = "Fig. X: demo\n\napp  a  b\n----------\nfoo  1.000  2.5\n";
        let err = compare("demo", GOLDEN, actual, Tolerance::EXACT).unwrap_err();
        assert!(matches!(
            err.mismatches()[0],
            Mismatch::LineCount {
                expected: 4,
                actual: 3
            }
        ));
    }
}

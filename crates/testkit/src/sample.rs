//! Sampling helpers (`proptest::sample` lookalike).

use crate::prop::Arbitrary;
use crate::rng::StdRng;

/// A length-independent index into any collection, like
/// `proptest::sample::Index`: generate once, project onto a concrete
/// length later with [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects onto a collection of length `len`, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{any, Strategy};

    #[test]
    fn index_is_always_in_bounds() {
        let strat = any::<Index>();
        let mut rng = StdRng::seed_from_u64(4);
        for len in [1usize, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(strat.generate(&mut rng).index(len) < len);
            }
        }
    }
}

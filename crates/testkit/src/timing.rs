//! A small wall-clock timing harness for `cargo bench` targets
//! (criterion replacement; enabled by the `timing` feature).
//!
//! Not a statistics engine: it warms up, auto-calibrates an iteration
//! batch to a target sample duration, collects a fixed number of samples,
//! and reports min/median/mean per iteration. Good enough to spot
//! order-of-magnitude regressions in the model hot paths while staying
//! dependency-free and offline.
//!
//! Environment knobs: `ENA_BENCH_SAMPLES` (default 20) and
//! `ENA_BENCH_SAMPLE_MS` (default 20 ms per sample).

use std::time::{Duration, Instant};

/// Measurement of one benchmark: nanoseconds per iteration across samples.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark label.
    pub label: String,
    /// Iterations per sample used after calibration.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per sample, sorted ascending.
    pub ns_per_iter: Vec<f64>,
}

impl Measurement {
    /// Fastest observed sample (ns/iter).
    pub fn min_ns(&self) -> f64 {
        self.ns_per_iter.first().copied().unwrap_or(0.0)
    }

    /// Median sample (ns/iter).
    pub fn median_ns(&self) -> f64 {
        let n = self.ns_per_iter.len();
        if n == 0 {
            return 0.0;
        }
        if n % 2 == 1 {
            self.ns_per_iter[n / 2]
        } else {
            0.5 * (self.ns_per_iter[n / 2 - 1] + self.ns_per_iter[n / 2])
        }
    }

    /// Mean across samples (ns/iter).
    pub fn mean_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return 0.0;
        }
        self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group of benchmarks; the `main` object of a bench target.
pub struct Harness {
    group: String,
    samples: usize,
    sample_target: Duration,
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates a harness for a bench group, honoring the environment
    /// knobs documented at the module level.
    pub fn new(group: impl Into<String>) -> Self {
        let samples = std::env::var("ENA_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20)
            .max(3);
        let sample_ms = std::env::var("ENA_BENCH_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64)
            .max(1);
        Self {
            group: group.into(),
            samples,
            sample_target: Duration::from_millis(sample_ms),
            results: Vec::new(),
        }
    }

    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Runs one benchmark: calibrates, samples, prints one summary line,
    /// and records the measurement.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> &Measurement {
        // Warm-up + calibration: find an iteration count whose batch
        // takes roughly the target sample duration.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_target || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                (self.sample_target.as_nanos() / elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }

        let mut ns_per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            ns_per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        ns_per_iter.sort_by(|a, b| a.total_cmp(b));

        let m = Measurement {
            label: label.to_string(),
            iters_per_sample: iters,
            ns_per_iter,
        };
        println!(
            "{:<40} median {:>12}  mean {:>12}  min {:>12}  ({} iters x {} samples)",
            format!("{}/{}", self.group, m.label),
            human(m.median_ns()),
            human(m.mean_ns()),
            human(m.min_ns()),
            m.iters_per_sample,
            self.samples,
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_ordered_and_positive() {
        std::env::set_var("ENA_BENCH_SAMPLES", "3");
        std::env::set_var("ENA_BENCH_SAMPLE_MS", "1");
        let mut h = Harness::new("testkit");
        let m = h.bench("spin", || std::hint::black_box((0..100u64).sum::<u64>()));
        assert!(m.min_ns() > 0.0);
        assert!(m.min_ns() <= m.median_ns());
        assert!(m.median_ns() <= *m.ns_per_iter.last().unwrap());
        assert_eq!(m.ns_per_iter.len(), 3);
    }

    #[test]
    fn median_of_even_sample_counts_averages() {
        let m = Measurement {
            label: "m".into(),
            iters_per_sample: 1,
            ns_per_iter: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(m.median_ns(), 2.5);
        assert_eq!(m.mean_ns(), 2.5);
        assert_eq!(m.min_ns(), 1.0);
    }
}

//! A minimal property-testing harness with pinned seeds.
//!
//! Mirrors the slice of the `proptest` API the workspace's suites use —
//! range strategies, tuples, [`crate::collection::vec`], `prop_map`,
//! `prop_oneof!`, [`any`] — without shrinking trees or persistence files.
//! Failure reporting is replay-based instead ("shrinking-lite"): every
//! failure prints the base seed and the failing case's seed so the exact
//! inputs can be regenerated with `ENA_TESTKIT_SEED`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::{SplitMix64, StdRng};

/// A failed property case; constructed by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Harness configuration; the analogue of `proptest::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
///
/// Unlike proptest strategies there is no shrinking tree: a strategy is a
/// pure function of the RNG state, which the runner pins per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!` arms, whose
    /// closures otherwise have distinct types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

trait ErasedStrategy<T> {
    fn generate_erased(&self, rng: &mut StdRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate_erased(rng)
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.bounded_u64(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical uniform generator; the analogue of
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Generates one value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy form of [`Arbitrary`]; returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<bool>()`, `any::<Index>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8, S9 => 9);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8, S9 => 9, S10 => 10);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7, S8 => 8, S9 => 9, S10 => 10, S11 => 11);

/// FNV-1a, used only to derive a stable per-test base seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: generates cases, pins seeds, reports failures.
pub struct Runner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
    seed_from_env: bool,
}

impl Runner {
    /// Creates a runner for the property `name` (used in reports and as
    /// the seed-derivation key). `ENA_TESTKIT_SEED` / `ENA_TESTKIT_CASES`
    /// override the defaults.
    pub fn new(mut config: ProptestConfig, name: &'static str) -> Self {
        if let Some(cases) = env_u64("ENA_TESTKIT_CASES") {
            config.cases = cases.min(u32::MAX as u64) as u32;
        }
        let (base_seed, seed_from_env) = match env_u64("ENA_TESTKIT_SEED") {
            Some(s) => (s, true),
            None => (fnv1a(name.as_bytes()), false),
        };
        Self {
            config,
            name,
            base_seed,
            seed_from_env,
        }
    }

    /// Runs the property `f` over `config.cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose
    /// property returns `Err` or panics, with replay instructions.
    pub fn run<S, F>(&self, strategy: &S, f: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut stream = SplitMix64::new(self.base_seed);
        for case in 0..self.config.cases {
            let case_seed = stream.next_u64();
            let mut rng = StdRng::seed_from_u64(case_seed);
            let value = strategy.generate(&mut rng);
            match catch_unwind(AssertUnwindSafe(|| f(value))) {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    panic!("{}", self.report(case, case_seed, e.message()));
                }
                Err(panic) => {
                    eprintln!("{}", self.report(case, case_seed, "(property panicked)"));
                    resume_unwind(panic);
                }
            }
        }
    }

    fn report(&self, case: u32, case_seed: u64, message: &str) -> String {
        let source = if self.seed_from_env {
            " (from ENA_TESTKIT_SEED)"
        } else {
            ""
        };
        format!(
            "property `{}` failed at case {}/{} \n\
             {}\n\
             base seed: {:#018x}{} | case seed: {:#018x}\n\
             replay: ENA_TESTKIT_SEED={} ENA_TESTKIT_CASES={} cargo test {}",
            self.name,
            case + 1,
            self.config.cases,
            message,
            self.base_seed,
            source,
            case_seed,
            self.base_seed,
            case + 1,
            self.name.rsplit("::").next().unwrap_or(self.name),
        )
    }
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key} must be an integer, got {raw:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = (0.0f64..1.0, 1u32..100).prop_map(|(f, i)| (f, i * 2));
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let u = Union::new(vec![
            Just(1u32).boxed(),
            Just(2u32).boxed(),
            Just(3u32).boxed(),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn runner_passes_a_true_property() {
        Runner::new(ProptestConfig::with_cases(64), "testkit::true_prop").run(
            &(0u32..10,),
            |(x,)| {
                if x < 10 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("out of range"))
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "replay: ENA_TESTKIT_SEED=")]
    fn runner_reports_replay_seed_on_failure() {
        Runner::new(ProptestConfig::with_cases(64), "testkit::false_prop").run(
            &(0u32..10,),
            |(x,)| {
                if x < 5 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail("x too big"))
                }
            },
        );
    }
}

//! The `proptest!`-shaped macro surface.

/// Declares property tests.
///
/// Same shape as `proptest::proptest!`: an optional
/// `#![proptest_config(...)]` inner attribute, then `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
///
/// ```
/// use ena_testkit::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::prop::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ( $($strat,)+ );
                $crate::prop::Runner::new(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                )
                .run(&__strategy, |( $($arg,)+ )| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::prop::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
///
/// Each arm is boxed, so arms may be `prop_map`s with distinct closure
/// types, exactly like `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $($crate::prop::Strategy::boxed($arm)),+
        ])
    };
}

//! Deterministic, seeded filesystem fault injection.
//!
//! Production code that persists state (the sweep cache, checkpoint
//! files) talks to the filesystem through the [`Vfs`] trait instead of
//! calling `std::fs` directly. In production the implementation is
//! [`RealFs`], a zero-cost passthrough. Under test, [`ChaosFs`] wraps
//! the real filesystem with a *seeded failpoint registry*: every
//! operation consumes one index from a global counter, and a SplitMix64
//! stream keyed by `(seed, index)` decides whether that operation
//! succeeds, fails outright, lands only a prefix of its bytes
//! (short write), or lands a prefix plus trailing garbage (torn write).
//!
//! Two properties make the layer usable for chaos campaigns:
//!
//! - **Determinism.** The fault schedule is a pure function of the seed
//!   and the operation index, so a failing campaign replays exactly.
//! - **Honest acknowledgement.** An injected fault always surfaces as an
//!   `Err` to the caller; `ChaosFs` never lies about success. Durability
//!   invariants ("no acknowledged record is ever lost") are therefore
//!   meaningful: only operations that returned `Ok` are acknowledged.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::rng::SplitMix64;

/// A writable file handle handed out by a [`Vfs`].
///
/// The `io::Write` supertrait covers buffered writes and `flush`
/// (push to the OS); `sync_all` additionally forces the OS to push the
/// bytes to the device (`fsync`), the step that makes a write durable
/// across a crash.
pub trait VfsFile: io::Write + Send {
    /// Forces everything written so far to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem surface the execution substrate is allowed to use.
///
/// Deliberately small: append-only data files plus the
/// write-temp → `sync_all` → [`rename`](Vfs::rename) idiom for atomic
/// replacement. Everything the sweep cache and checkpoint paths need,
/// and nothing more — a small surface is what makes exhaustive fault
/// injection tractable.
pub trait Vfs: fmt::Debug + Send + Sync {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Reads the entire file as raw bytes.
    ///
    /// Bytes, not a `String`: a torn write can leave non-UTF-8 garbage
    /// at the tail, and readers must be able to salvage the intact
    /// prefix instead of rejecting the whole file.
    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Opens `path` for appending, creating it if missing.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Creates `path` fresh (truncating any existing file).
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically renames `from` onto `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a direct passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RealFs;

impl VfsFile for fs::File {
    fn sync_all(&mut self) -> io::Result<()> {
        fs::File::sync_all(self)
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(file))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(fs::File::create(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Per-mille fault rates for a [`ChaosFs`].
///
/// Rates are evaluated per operation in the order fail → short → torn,
/// so `fail + short + torn` out of 1000 data-carrying writes are faulted
/// overall. Short and torn writes only exist for data-carrying writes;
/// other operations (open, rename, remove, read, flush, sync) are only
/// subject to `fail_permille`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Chance (per mille) an operation fails outright with no effect.
    pub fail_permille: u16,
    /// Chance (per mille) a write lands only a prefix, then errors.
    pub short_permille: u16,
    /// Chance (per mille) a write lands a prefix plus garbage bytes,
    /// then errors.
    pub torn_permille: u16,
}

impl ChaosConfig {
    /// A moderately hostile default: 2% hard failures, 1% short writes,
    /// 1% torn writes.
    pub fn default_rates() -> Self {
        Self {
            fail_permille: 20,
            short_permille: 10,
            torn_permille: 10,
        }
    }

    /// A passthrough configuration that never injects anything.
    pub fn quiet() -> Self {
        Self {
            fail_permille: 0,
            short_permille: 0,
            torn_permille: 0,
        }
    }
}

/// Counters of what a [`ChaosFs`] actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounts {
    /// Operations observed (faulted or not).
    pub ops: u64,
    /// Operations failed outright.
    pub failed: u64,
    /// Writes cut short (prefix only).
    pub short_writes: u64,
    /// Writes torn (prefix plus garbage).
    pub torn_writes: u64,
}

impl ChaosCounts {
    /// Total injected faults of any kind.
    pub fn injected(&self) -> u64 {
        self.failed + self.short_writes + self.torn_writes
    }
}

/// What the failpoint registry decided for one operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    Fail,
    Short,
    Torn,
}

/// A seeded fault-injecting [`Vfs`] over the real filesystem.
///
/// Clones share one operation counter (and counts), so a `ChaosFs`
/// and the file handles it hands out consume indices from the same
/// deterministic schedule.
#[derive(Clone, Debug)]
pub struct ChaosFs {
    seed: u64,
    config: ChaosConfig,
    counts: Arc<Mutex<ChaosCounts>>,
}

impl ChaosFs {
    /// A chaos filesystem drawing its fault schedule from `seed`.
    pub fn new(seed: u64, config: ChaosConfig) -> Self {
        Self {
            seed,
            config,
            counts: Arc::new(Mutex::new(ChaosCounts::default())),
        }
    }

    /// Snapshot of the operation/fault counters so far.
    pub fn counts(&self) -> ChaosCounts {
        *self.lock()
    }

    /// Locks the shared counters, recovering from a poisoned sibling:
    /// the data is plain counters, valid regardless of where a holder
    /// panicked.
    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosCounts> {
        self.counts
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Draws the fault decision for the next operation index and returns
    /// it along with a per-operation RNG for prefix/garbage sampling.
    fn decide(&self, write_sized: bool) -> (Fault, SplitMix64, u64) {
        let mut counts = self.lock();
        let index = counts.ops;
        counts.ops += 1;
        let mut rng = SplitMix64::new(self.seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407));
        let draw = rng.next_u64() % 1000;
        let c = self.config;
        let fail = u64::from(c.fail_permille);
        let short = fail + u64::from(c.short_permille);
        let torn = short + u64::from(c.torn_permille);
        let fault = if draw < fail {
            Fault::Fail
        } else if write_sized && draw < short {
            Fault::Short
        } else if write_sized && draw < torn {
            Fault::Torn
        } else {
            Fault::None
        };
        match fault {
            Fault::None => {}
            Fault::Fail => counts.failed += 1,
            Fault::Short => counts.short_writes += 1,
            Fault::Torn => counts.torn_writes += 1,
        }
        (fault, rng, index)
    }

    fn injected_error(index: u64, what: &str) -> io::Error {
        io::Error::other(format!("chaos: injected {what} (op {index})"))
    }
}

impl Vfs for ChaosFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "create_dir_all failure"));
        }
        RealFs.create_dir_all(dir)
    }

    fn read_bytes(&self, path: &Path) -> io::Result<Vec<u8>> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "read failure"));
        }
        RealFs.read_bytes(path)
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "open failure"));
        }
        let inner = RealFs.open_append(path)?;
        Ok(Box::new(ChaosFile {
            inner,
            chaos: self.clone(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "create failure"));
        }
        let inner = RealFs.create(path)?;
        Ok(Box::new(ChaosFile {
            inner,
            chaos: self.clone(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "rename failure"));
        }
        RealFs.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (fault, _, index) = self.decide(false);
        if fault != Fault::None {
            return Err(Self::injected_error(index, "remove failure"));
        }
        RealFs.remove_file(path)
    }
}

/// A file handle whose writes pass through the failpoint registry.
struct ChaosFile {
    inner: Box<dyn VfsFile>,
    chaos: ChaosFs,
}

impl io::Write for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let (fault, mut rng, index) = self.chaos.decide(!buf.is_empty());
        match fault {
            Fault::None => self.inner.write(buf),
            Fault::Fail => Err(ChaosFs::injected_error(index, "write failure")),
            Fault::Short => {
                let keep = (rng.next_u64() % buf.len() as u64) as usize;
                self.inner.write_all(&buf[..keep])?;
                Err(ChaosFs::injected_error(index, "short write"))
            }
            Fault::Torn => {
                let keep = (rng.next_u64() % buf.len() as u64) as usize;
                self.inner.write_all(&buf[..keep])?;
                // 1..=8 garbage bytes, arbitrary values: torn tails may be
                // non-UTF-8, and readers must survive that.
                let garbage_len = 1 + (rng.next_u64() % 8) as usize;
                let garbage: Vec<u8> = (0..garbage_len)
                    .map(|_| {
                        let [byte, ..] = rng.next_u64().to_le_bytes();
                        byte
                    })
                    .collect();
                self.inner.write_all(&garbage)?;
                Err(ChaosFs::injected_error(index, "torn write"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let (fault, _, index) = self.chaos.decide(false);
        if fault != Fault::None {
            return Err(ChaosFs::injected_error(index, "flush failure"));
        }
        self.inner.flush()
    }
}

impl VfsFile for ChaosFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let (fault, _, index) = self.chaos.decide(false);
        if fault != Fault::None {
            return Err(ChaosFs::injected_error(index, "sync failure"));
        }
        self.inner.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ena-testkit-chaos-{name}"));
        let _removed = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drives a fixed operation sequence and returns (counts, file bytes).
    fn drive(seed: u64, dir: &Path) -> (ChaosCounts, Vec<u8>) {
        let chaos = ChaosFs::new(seed, ChaosConfig::default_rates());
        let path = dir.join("data");
        let _removed = fs::remove_file(&path);
        for i in 0..200u64 {
            if let Ok(mut f) = chaos.open_append(&path) {
                let _ignored = f.write_all(format!("line-{i:04}\n").as_bytes());
                let _ignored = f.sync_all();
            }
        }
        let bytes = fs::read(&path).unwrap_or_default();
        (chaos.counts(), bytes)
    }

    #[test]
    fn same_seed_same_schedule_and_same_bytes() {
        let dir = tmp("determinism");
        let (c1, b1) = drive(42, &dir);
        let (c2, b2) = drive(42, &dir);
        assert_eq!(c1, c2);
        assert_eq!(b1, b2);
        assert!(c1.injected() > 0, "default rates must inject something");
    }

    #[test]
    fn different_seeds_differ() {
        let dir = tmp("seeds");
        let (c1, _) = drive(1, &dir);
        let (c2, _) = drive(2, &dir);
        // The schedules are independent streams; byte-identical counters
        // across 600 operations would mean the seed is ignored.
        assert_ne!(
            (c1.failed, c1.short_writes, c1.torn_writes),
            (c2.failed, c2.short_writes, c2.torn_writes)
        );
    }

    #[test]
    fn quiet_config_is_a_passthrough() {
        let dir = tmp("quiet");
        let chaos = ChaosFs::new(7, ChaosConfig::quiet());
        let path = dir.join("data");
        let mut f = chaos.open_append(&path).unwrap();
        f.write_all(b"hello\n").unwrap();
        f.sync_all().unwrap();
        drop(f);
        assert_eq!(chaos.read_bytes(&path).unwrap(), b"hello\n");
        let counts = chaos.counts();
        assert_eq!(counts.injected(), 0);
        assert!(counts.ops >= 4);
    }

    #[test]
    fn short_and_torn_writes_leave_only_a_prefix_and_report_an_error() {
        let dir = tmp("torn");
        // Rates force every write to be short or torn.
        let config = ChaosConfig {
            fail_permille: 0,
            short_permille: 500,
            torn_permille: 500,
        };
        let chaos = ChaosFs::new(9, config);
        let path = dir.join("data");
        let payload = b"0123456789abcdef";
        let mut f = chaos.open_append(&path).unwrap();
        let err = f.write_all(payload).unwrap_err();
        assert!(err.to_string().contains("chaos"), "{err}");
        drop(f);
        let on_disk = fs::read(&path).unwrap();
        let counts = chaos.counts();
        if counts.torn_writes > 0 {
            assert!(
                !on_disk.starts_with(payload),
                "torn write must not land fully"
            );
        } else {
            assert!(on_disk.len() < payload.len(), "short write must truncate");
            assert_eq!(&payload[..on_disk.len()], &on_disk[..]);
        }
    }

    #[test]
    fn real_fs_round_trips() {
        let dir = tmp("realfs");
        let vfs = RealFs;
        let path = dir.join("data");
        let tmp_path = dir.join("data.tmp");
        let mut f = vfs.create(&tmp_path).unwrap();
        f.write_all(b"one\n").unwrap();
        f.sync_all().unwrap();
        drop(f);
        vfs.rename(&tmp_path, &path).unwrap();
        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b"two\n").unwrap();
        drop(f);
        assert_eq!(vfs.read_bytes(&path).unwrap(), b"one\ntwo\n");
        vfs.remove_file(&path).unwrap();
        assert_eq!(
            vfs.read_bytes(&path).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }
}

//! Deterministic, seedable pseudo-random number generation.
//!
//! Two generators cover every need in the workspace:
//!
//! - [`SplitMix64`]: a tiny 64-bit state generator used for seeding and for
//!   deriving independent streams (one per property-test case).
//! - [`Xoshiro256pp`] (xoshiro256++): the workhorse generator behind the
//!   workload mini-apps and the property harness. Exported as [`StdRng`]
//!   so call sites read like the `rand` API they replaced.
//!
//! Both are fully deterministic functions of their seed on every platform:
//! same seed, same byte-identical stream.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: Steele, Lea & Flood's 64-bit mixing generator.
///
/// Passes BigCrush with 64 bits of state; its main roles here are seeding
/// [`Xoshiro256pp`] and splitting one seed into many independent streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna): 256-bit state, 64-bit output.
///
/// The default generator for everything seeded in this workspace. The
/// `rand`-flavored surface ([`Self::seed_from_u64`], [`Self::random_range`],
/// [`Self::shuffle`]) keeps the workload apps' call sites idiomatic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

/// The workspace-standard RNG, by analogy with `rand::rngs::StdRng`.
pub type StdRng = Xoshiro256pp;

fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64,
    /// as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)` without modulo bias
    /// (Lemire's multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn bounded_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "bounded_u64 requires n > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples uniformly from a range, mirroring `rand`'s `random_range`.
    ///
    /// Supported: half-open and inclusive ranges over `f64` and the common
    /// integer types.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator (stream splitting).
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

/// A range that can be sampled uniformly; the `rand` trait of the same
/// name, reduced to what the workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut Xoshiro256pp) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Xoshiro256pp) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard the (measure-zero) rounding case v == end.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Xoshiro256pp) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {:?}", self);
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {:?}", self);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.random_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&f));
            let i = rng.random_range(2..8);
            assert!((2..8).contains(&i));
            let u = rng.random_range(0u32..17);
            assert!(u < 17);
            let v = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.bounded_u64(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = StdRng::seed_from_u64(11);
        let mut a = parent.split();
        let mut b = parent.split();
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}

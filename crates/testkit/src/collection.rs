//! Collection strategies (`proptest::collection` lookalike).

use crate::prop::Strategy;
use crate::rng::StdRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact size, `min..max`, or
/// `min..=max`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound; always > `min`.
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_excl: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len =
            self.size.min + rng.bounded_u64((self.size.max_excl - self.size.min) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let strat = vec(0u32..10, 3..7);
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            seen.insert(v.len());
            assert!(v.iter().all(|&x| x < 10));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn exact_size_is_exact() {
        let strat = vec(0u32..10, 5);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }
}

//! Workspace walking and per-file semantic pre-analysis.
//!
//! Each source file is lexed once; this module then derives everything
//! the rules need: which lines sit inside `#[cfg(test)]` or
//! `#[cfg(feature = "timing")]` items, which sibling module files those
//! attributes gate wholesale (`#[cfg(test)] mod fixtures;`), and which
//! suppression directives the file declares.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};
use crate::LintError;

/// Which cargo target tree a file belongs to; rules choose their scope
/// from this (e.g. panics are only policed in library code).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` excluding `src/bin/` and `src/main.rs`.
    Lib,
    /// `src/main.rs` and `src/bin/**`.
    Bin,
    /// `tests/**`.
    Test,
    /// `examples/**`.
    Example,
    /// `benches/**`.
    Bench,
}

/// Inclusive 1-based line ranges.
#[derive(Clone, Debug, Default)]
pub struct LineSet(Vec<(u32, u32)>);

impl LineSet {
    /// Adds an inclusive range.
    pub fn add(&mut self, start: u32, end: u32) {
        self.0.push((start, end));
    }

    /// True when `line` falls inside any recorded range.
    pub fn contains(&self, line: u32) -> bool {
        self.0.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// One in-source suppression directive.
///
/// Accepted spellings, always inside a comment, justification mandatory:
/// `// ena:allow(rule-id): why this one site is exempt`
/// `// #[allow(ena::rule_id)]: why this one site is exempt`
///
/// A directive suppresses exactly one finding of that rule on its own
/// line or the line below.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule id, normalized to hyphens.
    pub rule: String,
    /// Line the directive sits on.
    pub line: u32,
    /// Free-text justification (may be empty; the engine rejects that).
    pub justification: String,
}

/// One in-source durability annotation:
/// `// ena:durability(lock-name): why blocking under this lock is the point`
///
/// Unlike an [`AllowDirective`] — which excuses one finding — a
/// durability annotation declares that the *function it sits in* is a
/// sanctioned durability section for the named lock: blocking I/O
/// performed while that lock is held is the design (e.g. append-before-
/// acknowledge under `ShardStore`'s disk lock), not an accident. The
/// `blocking-under-lock` rule skips such sections; an annotation that
/// exempts nothing is itself a diagnostic, like a stale allow.
#[derive(Clone, Debug)]
pub struct DurabilityDirective {
    /// Crate-local lock name the section holds (e.g. `disk`).
    pub lock: String,
    /// Line the annotation sits on.
    pub line: u32,
    /// Free-text justification (may be empty; the engine rejects that).
    pub justification: String,
}

/// A lexed and pre-analyzed source file.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Package name owning the file.
    pub crate_name: String,
    /// Workspace-root-relative path, for display.
    pub rel_path: String,
    /// Crate-root-relative path, for target classification.
    pub in_crate: String,
    /// Target tree the file belongs to.
    pub target: TargetKind,
    /// Code tokens (comments stripped).
    pub code: Vec<Tok>,
    /// Comment tokens only.
    pub comments: Vec<Tok>,
    /// Lines inside `#[cfg(test)]`-gated items.
    pub test_lines: LineSet,
    /// Lines inside `#[cfg(feature = "timing")]`-gated items.
    pub timing_lines: LineSet,
    /// Entire file gated behind `#[cfg(test)] mod x;` in its parent.
    pub exempt_test: bool,
    /// Entire file gated behind the `timing` feature in its parent.
    pub exempt_timing: bool,
    /// Suppression directives, in line order.
    pub allows: Vec<AllowDirective>,
    /// Durability annotations, in line order.
    pub durability: Vec<DurabilityDirective>,
    /// Names from `#[cfg(test)] mod x;` items in this file.
    pub gated_test_modules: Vec<String>,
    /// Names from `#[cfg(feature = "timing")] mod x;` items in this file.
    pub gated_timing_modules: Vec<String>,
}

impl SourceFile {
    /// Lexes and pre-analyzes one file from source text. `rel_path` is
    /// the display path; `in_crate` drives target classification.
    pub fn from_source(crate_name: &str, rel_path: &str, in_crate: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let (code, comments): (Vec<Tok>, Vec<Tok>) =
            toks.into_iter().partition(|t| t.kind != TokKind::Comment);
        let regions = analyze_regions(&code);
        let allows = parse_allows(&comments);
        let durability = parse_durability(&comments);
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            in_crate: in_crate.to_string(),
            target: classify(in_crate),
            code,
            comments,
            test_lines: regions.test,
            timing_lines: regions.timing,
            exempt_test: false,
            exempt_timing: false,
            allows,
            durability,
            gated_test_modules: regions.test_mods,
            gated_timing_modules: regions.timing_mods,
        }
    }
}

/// All scanned files of one crate.
#[derive(Clone, Debug)]
pub struct CrateSrc {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Scanned files in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

/// Loads every crate of the workspace under `root`: each `crates/*`
/// directory with a `Cargo.toml`, plus the root package when the root
/// manifest declares one. Directories named `fixtures` or `target` are
/// skipped so analysis fixtures never lint the real workspace red.
pub fn load_workspace(root: &Path) -> Result<Vec<CrateSrc>, LintError> {
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = fs::read_dir(&crates_dir).map_err(|e| LintError::io(&crates_dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::io(&crates_dir, e))?;
            let path = entry.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() {
                crate_dirs.push(path);
            }
        }
    }
    crate_dirs.sort();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        let text =
            fs::read_to_string(&root_manifest).map_err(|e| LintError::io(&root_manifest, e))?;
        if text.lines().any(|l| l.trim() == "[package]") {
            crate_dirs.push(root.to_path_buf());
        }
    }

    let mut crates = Vec::new();
    for dir in crate_dirs {
        crates.push(load_crate(root, &dir)?);
    }
    Ok(crates)
}

fn load_crate(root: &Path, dir: &Path) -> Result<CrateSrc, LintError> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest =
        fs::read_to_string(&manifest_path).map_err(|e| LintError::io(&manifest_path, e))?;
    let name = package_name(&manifest).unwrap_or_else(|| {
        dir.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".to_string())
    });

    let mut rs_files = Vec::new();
    for tree in ["src", "tests", "examples", "benches"] {
        collect_rs(&dir.join(tree), &mut rs_files)?;
    }
    rs_files.sort();

    let mut files = Vec::new();
    let mut gated_modules: Vec<(PathBuf, bool)> = Vec::new(); // (module path base, is_test)
    for path in &rs_files {
        let text = fs::read_to_string(path).map_err(|e| LintError::io(path, e))?;
        let in_crate = rel_string(path, dir);
        let rel_path = rel_string(path, root);
        let file = SourceFile::from_source(&name, &rel_path, &in_crate, &text);
        if let Some(parent) = path.parent() {
            for m in &file.gated_test_modules {
                gated_modules.push((parent.join(m), true));
            }
            for m in &file.gated_timing_modules {
                gated_modules.push((parent.join(m), false));
            }
        }
        files.push(file);
    }

    // Whole-file exemptions: `#[cfg(test)] mod x;` gates `x.rs` and `x/**`.
    for (base, is_test) in &gated_modules {
        let file_form = rel_string(&base.with_extension("rs"), dir);
        let dir_form = rel_string(base, dir);
        for f in &mut files {
            let gated = f.in_crate == file_form || f.in_crate.starts_with(&format!("{dir_form}/"));
            if gated {
                if *is_test {
                    f.exempt_test = true;
                } else {
                    f.exempt_timing = true;
                }
            }
        }
    }
    Ok(CrateSrc { name, files })
}

fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some((key, value)) = line.split_once('=') {
                if key.trim() == "name" {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| LintError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError::io(dir, e))?;
        let path = entry.path();
        let file_name = entry.file_name();
        let file_name = file_name.to_string_lossy();
        if path.is_dir() {
            if file_name == "fixtures" || file_name == "target" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if file_name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_string(path: &Path, base: &Path) -> String {
    let rel = path.strip_prefix(base).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn classify(in_crate: &str) -> TargetKind {
    if in_crate == "src/main.rs" || in_crate.starts_with("src/bin/") {
        TargetKind::Bin
    } else if in_crate.starts_with("src/") {
        TargetKind::Lib
    } else if in_crate.starts_with("tests/") {
        TargetKind::Test
    } else if in_crate.starts_with("benches/") {
        TargetKind::Bench
    } else {
        TargetKind::Example
    }
}

#[derive(Debug, Default)]
struct Regions {
    test: LineSet,
    timing: LineSet,
    test_mods: Vec<String>,
    timing_mods: Vec<String>,
}

/// Walks the code tokens finding `#[cfg(...)]` attributes that gate
/// items on `test` or `feature = "timing"`, and records the gated item's
/// line extent (to its matching `}` or terminating `;`).
fn analyze_regions(code: &[Tok]) -> Regions {
    let mut regions = Regions::default();
    let mut i = 0;
    while i < code.len() {
        let is_attr_start = code.get(i).is_some_and(|t| t.is_punct('#'))
            && code.get(i + 1).is_some_and(|t| t.is_punct('['));
        if !is_attr_start {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_close(code, i + 1, '[', ']') else {
            break;
        };
        let inner = code.get(i + 2..attr_end).unwrap_or(&[]);
        let attr_line = code.get(i).map_or(1, |t| t.line);
        let is_cfg = inner.first().is_some_and(|t| t.is_ident("cfg"));
        let gates_test = is_cfg && inner.iter().any(|t| t.is_ident("test"));
        let gates_timing = is_cfg
            && inner.iter().any(|t| t.is_ident("feature"))
            && inner
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text == "timing");
        if gates_test || gates_timing {
            if let Some(extent) = item_extent(code, attr_end + 1) {
                if gates_test {
                    regions.test.add(attr_line, extent.end_line);
                    if let Some(m) = extent.module {
                        regions.test_mods.push(m);
                    }
                } else {
                    regions.timing.add(attr_line, extent.end_line);
                    if let Some(m) = extent.module {
                        regions.timing_mods.push(m);
                    }
                }
            }
        }
        i = attr_end + 1;
    }
    regions
}

struct ItemExtent {
    end_line: u32,
    /// `Some(name)` when the item is an out-of-line `mod name;`.
    module: Option<String>,
}

/// Finds the extent of the item starting at `start` (first token after
/// the gating attribute): skips further attributes, then scans to the
/// first top-level `{` (returning its matching `}` line) or `;`.
fn item_extent(code: &[Tok], start: usize) -> Option<ItemExtent> {
    let mut j = start;
    // Skip stacked attributes.
    while code.get(j).is_some_and(|t| t.is_punct('#'))
        && code.get(j + 1).is_some_and(|t| t.is_punct('['))
    {
        j = match_close(code, j + 1, '[', ']')? + 1;
    }
    let item_start = j;
    let mut depth = 0i32;
    while let Some(t) = code.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    let close = match_close(code, j, '{', '}')?;
                    return Some(ItemExtent {
                        end_line: code.get(close).map_or(t.line, |c| c.line),
                        module: None,
                    });
                }
                Some(';') if depth == 0 => {
                    let module = out_of_line_module(code.get(item_start..j).unwrap_or(&[]));
                    return Some(ItemExtent {
                        end_line: t.line,
                        module,
                    });
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Recognizes `[pub [(...)]] mod name` token shapes.
fn out_of_line_module(item: &[Tok]) -> Option<String> {
    let mut toks = item.iter();
    let mut t = toks.next()?;
    if t.is_ident("pub") {
        t = toks.next()?;
        if t.is_punct('(') {
            for inner in toks.by_ref() {
                if inner.is_punct(')') {
                    break;
                }
            }
            t = toks.next()?;
        }
    }
    if !t.is_ident("mod") {
        return None;
    }
    let name = toks.next()?;
    if name.kind == TokKind::Ident && toks.next().is_none() {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Index of the punct closing the bracket opened at `open_idx`.
pub(crate) fn match_close(code: &[Tok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open_idx;
    while let Some(t) = code.get(j) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

/// Extracts suppression directives from comment tokens.
///
/// The directive must *start* the comment body (after the `//`/`/*`
/// sigils), so prose that merely mentions the syntax — e.g. inside a
/// doc-comment code span — is never mistaken for a live suppression.
fn parse_allows(comments: &[Tok]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches(|ch: char| ch == '/' || ch == '*' || ch == '!')
            .trim_start();
        let rest = body
            .strip_prefix("ena:allow(")
            .or_else(|| body.strip_prefix("#[allow(ena::"));
        let Some(rest) = rest else { continue };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest.get(..close).unwrap_or("").trim().replace('_', "-");
        let justification = rest
            .get(close + 1..)
            .unwrap_or("")
            .trim_start_matches(|ch: char| ch == ']' || ch == ':' || ch == '-' || ch == '—')
            .trim()
            .to_string();
        out.push(AllowDirective {
            rule,
            line: c.line,
            justification,
        });
    }
    out
}

/// Extracts `ena:durability(lock): why` annotations from comment tokens.
/// Same comment-start discipline as [`parse_allows`].
fn parse_durability(comments: &[Tok]) -> Vec<DurabilityDirective> {
    let mut out = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches(|ch: char| ch == '/' || ch == '*' || ch == '!')
            .trim_start();
        let Some(rest) = body.strip_prefix("ena:durability(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let lock = rest.get(..close).unwrap_or("").trim().to_string();
        let justification = rest
            .get(close + 1..)
            .unwrap_or("")
            .trim_start_matches(|ch: char| ch == ':' || ch == '-' || ch == '—')
            .trim()
            .to_string();
        out.push(DurabilityDirective {
            lock,
            line: c.line,
            justification,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions_of(src: &str) -> Regions {
        let toks = lex(src);
        let code: Vec<Tok> = toks
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        analyze_regions(&code)
    }

    #[test]
    fn cfg_test_module_extent_covers_the_block() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn x() {}\n}\nfn after() {}\n";
        let r = regions_of(src);
        assert!(r.test.contains(2));
        assert!(r.test.contains(4));
        assert!(r.test.contains(5));
        assert!(!r.test.contains(1));
        assert!(!r.test.contains(6));
    }

    #[test]
    fn gated_out_of_line_module_is_recorded() {
        let r = regions_of("#[cfg(feature = \"timing\")]\npub mod timing;\nfn f() {}\n");
        assert_eq!(r.timing_mods, vec!["timing".to_string()]);
        assert!(r.timing.contains(2));
        assert!(!r.timing.contains(3));
    }

    #[test]
    fn cfg_attr_on_single_fn_covers_only_that_fn() {
        let src = "#[cfg(test)]\nfn helper() {\n let x = 1;\n}\nfn live() {}\n";
        let r = regions_of(src);
        assert!(r.test.contains(3));
        assert!(!r.test.contains(5));
    }

    #[test]
    fn non_cfg_attributes_are_ignored() {
        let r = regions_of("#[derive(Debug)]\nstruct X { a: u32 }\n");
        assert!(!r.test.contains(1));
        assert!(!r.test.contains(2));
    }

    #[test]
    fn allow_directives_parse_both_spellings() {
        let toks = lex("// ena:allow(no-wallclock): bench-only telemetry\n\
             // #[allow(ena::no_panic_in_lib)]: guarded by the assert above\n\
             // ena:allow(no-wallclock)\n");
        let comments: Vec<Tok> = toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Comment)
            .collect();
        let allows = parse_allows(&comments);
        assert_eq!(allows.len(), 3);
        assert_eq!(allows[0].rule, "no-wallclock");
        assert_eq!(allows[0].justification, "bench-only telemetry");
        assert_eq!(allows[1].rule, "no-panic-in-lib");
        assert!(allows[1].justification.contains("assert"));
        assert!(allows[2].justification.is_empty());
    }

    #[test]
    fn classify_maps_paths_to_targets() {
        assert_eq!(classify("src/lib.rs"), TargetKind::Lib);
        assert_eq!(classify("src/bin/ena.rs"), TargetKind::Bin);
        assert_eq!(classify("src/main.rs"), TargetKind::Bin);
        assert_eq!(classify("tests/props.rs"), TargetKind::Test);
        assert_eq!(classify("benches/sweep.rs"), TargetKind::Bench);
        assert_eq!(classify("examples/quickstart.rs"), TargetKind::Example);
    }

    #[test]
    fn package_name_reads_the_package_section_only() {
        let manifest = "[workspace]\nmembers = []\n[package]\nname = \"ena-lint\"\n";
        assert_eq!(package_name(manifest), Some("ena-lint".to_string()));
        assert_eq!(package_name("[workspace]\n"), None);
    }
}

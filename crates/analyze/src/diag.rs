//! Structured diagnostics: what a rule found, where, and how to fix it.

use core::fmt;

/// How a diagnostic affects the exit status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported; fails the run only under `--deny-warnings`.
    Warn,
    /// Always fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => f.write_str("warn"),
            Severity::Deny => f.write_str("deny"),
        }
    }
}

/// One finding, pinned to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `no-unordered-iteration`).
    pub rule: &'static str,
    /// Effective severity after `lint.toml` is applied.
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Stable sort key: file, then line, then rule.
    pub fn sort_key(&self) -> (String, u32, &'static str) {
        (self.file.clone(), self.line, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}\n    fix: {}",
            self.file, self.line, self.severity, self.rule, self.message, self.hint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_location_rule_and_hint() {
        let d = Diagnostic {
            rule: "no-wallclock",
            severity: Severity::Deny,
            file: "crates/sweep/src/engine.rs".into(),
            line: 245,
            message: "`Instant` outside the `timing` feature".into(),
            hint: "gate it behind `#[cfg(feature = \"timing\")]`".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("crates/sweep/src/engine.rs:245: deny[no-wallclock]:"));
        assert!(text.contains("fix:"));
    }

    #[test]
    fn severity_orders_warn_below_deny() {
        assert!(Severity::Warn < Severity::Deny);
    }
}

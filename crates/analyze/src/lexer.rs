//! A minimal Rust lexer for static analysis.
//!
//! The scanner only needs token *shapes* — identifiers, punctuation,
//! literals, comments — not a full grammar. Getting string and comment
//! boundaries right is what matters: a mention of `unwrap` inside a doc
//! comment or a string literal must never look like a call site. The
//! lexer therefore handles the full literal surface (raw strings with
//! hash fences, byte strings, char-vs-lifetime disambiguation, nested
//! block comments) while treating everything else as single-character
//! punctuation.

/// Shape of one token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `as`, `struct`, ...).
    Ident,
    /// Integer literal, suffix included (`0`, `42u64`, `0xFF`).
    Int,
    /// Float literal (`1.0`, `3e-4`).
    Float,
    /// String literal of any flavor; `text` holds the unquoted body.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// Line or block comment, doc comments included; `text` is verbatim.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token shape.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line where the token starts.
    pub line: u32,
}

impl Tok {
    /// True when this is an identifier with exactly the given text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream. Comments are kept (rules that read
/// suppression directives need them); whitespace is dropped. The lexer
/// never fails: malformed input degrades to punctuation tokens.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    toks: Vec<Tok>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.toks.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if self.try_raw_or_byte(line) {
                // handled raw strings, byte strings, raw idents
            } else if c == '"' {
                self.bump();
                self.string_body(line);
            } else if c == '\'' {
                self.char_or_lifetime(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if is_ident_start(c) {
                self.ident(line);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line);
            }
        }
        self.toks
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth = depth.saturating_sub(1);
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::Comment, text, line);
    }

    /// Handles `r"..."`, `r#"..."#`, `br"..."`, `b"..."`, `b'x'`, and raw
    /// identifiers `r#ident`. Returns true when it consumed something.
    fn try_raw_or_byte(&mut self, line: u32) -> bool {
        let c = self.peek(0);
        if c == Some('r') || c == Some('b') {
            let mut ahead = 1;
            if c == Some('b') && self.peek(1) == Some('r') {
                ahead = 2;
            }
            // Count raw-string hash fences.
            let mut hashes = 0;
            while self.peek(ahead + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(ahead + hashes) == Some('"')
                && (ahead == 2 || c == Some('r') || hashes == 0)
            {
                if c == Some('b') && ahead == 1 && hashes == 0 {
                    // b"..." plain byte string
                    self.bump(); // b
                    self.bump(); // "
                    self.string_body(line);
                    return true;
                }
                if c == Some('r') || ahead == 2 {
                    for _ in 0..(ahead + hashes + 1) {
                        self.bump();
                    }
                    self.raw_string_body(hashes, line);
                    return true;
                }
            }
            if c == Some('r') && hashes == 1 && self.peek(2).is_some_and(is_ident_start) {
                // raw identifier r#ident
                self.bump();
                self.bump();
                self.ident(line);
                return true;
            }
            if c == Some('b') && self.peek(1) == Some('\'') {
                self.bump();
                self.char_or_lifetime(line);
                return true;
            }
        }
        false
    }

    fn string_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '\\' {
                if let Some(e) = self.bump() {
                    text.push('\\');
                    text.push(e);
                }
            } else if c == '"' {
                break;
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string_body(&mut self, hashes: usize, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(matched) == Some('#') {
                    matched += 1;
                }
                if matched == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match (self.peek(0), self.peek(1)) {
            (Some('\\'), _) => {
                // escaped char literal: '\n', '\'', '\u{..}'. The char
                // right after the backslash is part of the escape even
                // when it is a quote, so consume it unconditionally.
                let mut text = String::from("\\");
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokKind::Char, text, line);
            }
            (Some(c), Some('\'')) => {
                self.bump();
                self.bump();
                self.push(TokKind::Char, c.to_string(), line);
            }
            (Some(c), _) if is_ident_start(c) => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::Lifetime, text, line);
            }
            (Some(c), _) => {
                // Unusual but tolerated: treat as a one-char literal.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokKind::Char, c.to_string(), line);
            }
            (None, _) => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                if (c == 'e' || c == 'E')
                    && text.starts_with(|d: char| d.is_ascii_digit())
                    && !text.starts_with("0x")
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-')
                {
                    float = true;
                    text.push(c);
                    self.bump();
                    if matches!(self.peek(0), Some('+') | Some('-')) {
                        if let Some(s) = self.bump() {
                            text.push(s);
                        }
                    }
                    continue;
                }
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && !float {
                float = true;
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let kind = if float { TokKind::Float } else { TokKind::Int };
        self.push(kind, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::Ident, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_their_contents_from_ident_rules() {
        let toks = kinds(r#"let x = "call unwrap() here";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| !(matches!(k, TokKind::Ident) && t == "unwrap")));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Str) && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_fences_round_trip() {
        let toks = kinds(r###"let s = r#"quote " inside"#;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Str) && t == "quote \" inside"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Lifetime))
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Char))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn comments_are_kept_but_separate() {
        let toks = lex("// ena:allow(no-wallclock): reason\nlet x = 1; /* block */");
        assert!(matches!(toks.first(), Some(t) if t.kind == TokKind::Comment));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Comment && t.text.contains("block")));
        assert!(toks.iter().any(|t| t.is_ident("let") && t.line == 2));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Ident) && t == "after"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokKind::Comment))
                .count(),
            1
        );
    }

    #[test]
    fn numbers_do_not_eat_method_calls_or_ranges() {
        let toks = kinds("0.max(1) 0..10 1.5e-3 0xFFu32");
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Int) && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Ident) && t == "max"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Float) && t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Int) && t == "0xFFu32"));
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multi_hash_raw_strings_keep_embedded_fences_and_line_counts() {
        let toks = lex("let s = r##\"a \"# b\nc\"##; after");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "a \"# b\nc"));
        let after = toks
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("token after the raw string");
        assert_eq!(after.line, 2, "newline inside the raw string counts");
    }

    #[test]
    fn byte_and_raw_byte_strings_lex_as_strings() {
        let toks = kinds("let a = b\"abc\"; let b = br#\"x\"y\"#; let c = b'z';");
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Str) && t == "abc"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Str) && t == "x\"y"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Char) && t == "z"));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let toks = kinds("let r#type = r#match + 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Ident) && t == "type"));
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Ident) && t == "match"));
        assert!(
            !toks.iter().any(|(k, _)| matches!(k, TokKind::Str)),
            "r# before an ident is not a raw-string opener"
        );
    }

    #[test]
    fn escaped_quotes_do_not_desync_the_stream() {
        let toks = kinds("let a = '\\''; let b = \"\\\\\"; let c = 'x'; done");
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Char))
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, [&"\\'".to_string(), &"x".to_string()]);
        assert!(toks
            .iter()
            .any(|(k, t)| matches!(k, TokKind::Str) && t == "\\\\"));
        assert!(
            toks.iter()
                .any(|(k, t)| matches!(k, TokKind::Ident) && t == "done"),
            "the trailing ident survives: {toks:?}"
        );
    }

    #[test]
    fn nested_block_comments_track_lines_across_depth() {
        let toks = lex("/* l1\n/* l2 */\nl3 */ x");
        let x = toks.iter().find(|t| t.is_ident("x")).expect("x survives");
        assert_eq!(x.line, 3);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
    }

    #[test]
    fn lifetime_labels_and_underscore_char_disambiguate() {
        let toks = kinds(
            "fn g() { 'outer: loop { break 'outer; } let s: &'static str = \"\"; let u = '_'; }",
        );
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::Lifetime))
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes.len(), 3, "{lifetimes:?}");
        assert!(lifetimes.iter().all(|t| *t == "'outer" || *t == "'static"));
        assert!(
            toks.iter()
                .any(|(k, t)| matches!(k, TokKind::Char) && t == "_"),
            "'_' in expression position is a char, not a lifetime"
        );
    }

    #[test]
    fn unterminated_constructs_terminate_the_lexer_gracefully() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"abc", "r##\"abc\"#"] {
            let toks = lex(src);
            assert!(!toks.is_empty() || src.is_empty(), "{src:?} lexes");
        }
    }
}

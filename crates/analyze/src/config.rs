//! `lint.toml` parsing: per-rule default levels and per-crate overrides.
//!
//! The format is a deliberately tiny TOML subset (line-oriented, string
//! and bare-word values only) so the tool stays std-only:
//!
//! ```toml
//! [defaults]
//! no-panic-in-lib = "deny"
//!
//! [[override]]
//! crate = "ena-testkit"
//! rule = "no-panic-in-lib"
//! level = "allow"
//! reason = "assertion panics are the harness's reporting interface"
//! ```
//!
//! Every `allow`-level override must carry a `reason`: suppressions are
//! part of the reviewed record, not an escape hatch.

use crate::rules;

/// Effective level of a rule for some crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Rule does not run (requires a documented reason in an override).
    Allow,
    /// Findings are warnings.
    Warn,
    /// Findings are denials.
    Deny,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }
}

/// One `[[override]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Override {
    /// Crate (package) name the override applies to.
    pub krate: String,
    /// Rule identifier.
    pub rule: String,
    /// Level within that crate.
    pub level: Level,
    /// Mandatory justification when `level = "allow"`.
    pub reason: String,
}

/// Parsed configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LintConfig {
    defaults: Vec<(String, Level)>,
    overrides: Vec<Override>,
}

impl LintConfig {
    /// Level of `rule` in `krate`: the most specific match wins
    /// (override, then `[defaults]`, then built-in deny).
    pub fn level_for(&self, krate: &str, rule: &str) -> Level {
        if let Some(o) = self
            .overrides
            .iter()
            .find(|o| o.krate == krate && o.rule == rule)
        {
            return o.level;
        }
        self.defaults
            .iter()
            .find(|(r, _)| r == rule)
            .map_or(Level::Deny, |&(_, level)| level)
    }

    /// The documented overrides (for reporting).
    pub fn overrides(&self) -> &[Override] {
        &self.overrides
    }

    /// Parses the `lint.toml` subset. Errors carry a 1-based line number.
    pub fn parse(text: &str) -> Result<LintConfig, String> {
        enum Section {
            None,
            Defaults,
            Override,
        }
        let mut config = LintConfig::default();
        let mut section = Section::None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[defaults]" {
                section = Section::Defaults;
                continue;
            }
            if line == "[[override]]" {
                section = Section::Override;
                config.overrides.push(Override {
                    krate: String::new(),
                    rule: String::new(),
                    level: Level::Deny,
                    reason: String::new(),
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("lint.toml:{lineno}: unknown section {line}"));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match section {
                Section::None => {
                    return Err(format!("lint.toml:{lineno}: `{key}` outside any section"));
                }
                Section::Defaults => {
                    if !rules::is_known_rule(key) {
                        return Err(format!("lint.toml:{lineno}: unknown rule `{key}`"));
                    }
                    let Some(level) = Level::parse(value) else {
                        return Err(format!(
                            "lint.toml:{lineno}: level must be allow|warn|deny, got `{value}`"
                        ));
                    };
                    config.defaults.push((key.to_string(), level));
                }
                Section::Override => {
                    let Some(entry) = config.overrides.last_mut() else {
                        return Err(format!("lint.toml:{lineno}: override state lost"));
                    };
                    match key {
                        "crate" => entry.krate = value.to_string(),
                        "rule" => {
                            if !rules::is_known_rule(value) {
                                return Err(format!("lint.toml:{lineno}: unknown rule `{value}`"));
                            }
                            entry.rule = value.to_string();
                        }
                        "level" => {
                            let Some(level) = Level::parse(value) else {
                                return Err(format!(
                                    "lint.toml:{lineno}: level must be allow|warn|deny, got `{value}`"
                                ));
                            };
                            entry.level = level;
                        }
                        "reason" => entry.reason = value.to_string(),
                        other => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown override key `{other}`"
                            ));
                        }
                    }
                }
            }
        }
        for o in &config.overrides {
            if o.krate.is_empty() || o.rule.is_empty() {
                return Err("lint.toml: every [[override]] needs `crate` and `rule`".into());
            }
            if o.level == Level::Allow && o.reason.is_empty() {
                return Err(format!(
                    "lint.toml: allow-override of `{}` in `{}` needs a `reason`",
                    o.rule, o.krate
                ));
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_overrides() {
        let cfg = LintConfig::parse(
            r#"
# comment
[defaults]
no-wallclock = "warn"

[[override]]
crate = "ena-testkit"
rule = "no-panic-in-lib"
level = "allow"
reason = "harness interface"
"#,
        )
        .unwrap();
        assert_eq!(cfg.level_for("ena-noc", "no-wallclock"), Level::Warn);
        assert_eq!(cfg.level_for("ena-noc", "no-panic-in-lib"), Level::Deny);
        assert_eq!(
            cfg.level_for("ena-testkit", "no-panic-in-lib"),
            Level::Allow
        );
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let err = LintConfig::parse(
            "[[override]]\ncrate = \"x\"\nrule = \"no-wallclock\"\nlevel = \"allow\"\n",
        )
        .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rules_and_sections_are_rejected_with_line_numbers() {
        let err = LintConfig::parse("[defaults]\nnot-a-rule = \"deny\"\n").unwrap_err();
        assert!(err.contains("lint.toml:2"), "{err}");
        let err = LintConfig::parse("[weird]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
    }

    #[test]
    fn built_in_default_is_deny() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.level_for("any", "no-unordered-iteration"), Level::Deny);
    }
}

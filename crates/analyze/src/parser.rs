//! Brace-matched recovery of function items from the lexed token
//! stream.
//!
//! The per-file rules only need token shapes; the concurrency rules
//! need *structure*: which tokens form a function body, which `impl`
//! block a method belongs to, whether a signature returns a lock guard.
//! This module recovers exactly that — no types, no expressions, just
//! item boundaries found by brace matching — which is all the semantic
//! phase in [`crate::sema`] requires.

use crate::lexer::{Tok, TokKind};
use crate::scan::match_close;

/// One parameter of a recovered function.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`self` for receiver params).
    pub name: String,
    /// The declared type mentions `Mutex`/`RwLock` (not a guard type) —
    /// the function operates on a lock passed in by the caller.
    pub is_lock: bool,
}

/// One recovered `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, when inside one.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type mentions a `*Guard` type: the function hands a held
    /// lock back to its caller (a lock-helper).
    pub returns_guard: bool,
    /// Token indices of the body braces `(open, close)`; `None` for
    /// bodyless declarations (trait methods, `extern` items).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the body's closing brace (the `fn` line when
    /// bodyless) — the item's lexical extent for directive scoping.
    pub end_line: u32,
}

/// Recovers every `fn` item in `code` (a file's comment-stripped token
/// stream), nested functions included. Malformed input degrades to
/// fewer recovered items, never a failure.
pub fn parse_fns(code: &[Tok]) -> Vec<FnItem> {
    let containers = container_ranges(code);
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !code.get(i).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let Some(name_tok) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1; // `fn(`-style function-pointer type
            continue;
        };
        let line = code.get(i).map_or(1, |t| t.line);
        let mut j = i + 2;
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(code, j);
        }
        if !code.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let Some(params_close) = match_close(code, j, '(', ')') else {
            break;
        };
        let params = parse_params(code.get(j + 1..params_close).unwrap_or(&[]));
        // Scan past the return type / where clause to the body or `;`.
        let mut k = params_close + 1;
        let mut depth = 0i32;
        let mut body = None;
        let mut ret_tokens: Vec<&Tok> = Vec::new();
        while let Some(t) = code.get(k) {
            if t.kind == TokKind::Punct {
                match t.text.chars().next() {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => {
                        body = match_close(code, k, '{', '}').map(|close| (k, close));
                        break;
                    }
                    Some(';') if depth == 0 => break,
                    _ => {}
                }
            }
            ret_tokens.push(t);
            k += 1;
        }
        let returns_guard = ret_tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.contains("Guard"));
        let end_line = body
            .and_then(|(_, close)| code.get(close).map(|t| t.line))
            .unwrap_or(line);
        out.push(FnItem {
            name: name_tok.text.clone(),
            impl_type: containers
                .iter()
                .filter(|c| c.open < i && i < c.close)
                .min_by_key(|c| c.close - c.open)
                .map(|c| c.type_name.clone()),
            line,
            params,
            returns_guard,
            body,
            end_line,
        });
        i += 2; // continue after the name: nested fns are recovered too
    }
    out
}

struct Container {
    type_name: String,
    open: usize,
    close: usize,
}

/// Finds `impl`/`trait` block extents and the type name each one
/// attaches methods to (`impl X`, `impl Tr for X` → `X`; `trait Tr` →
/// `Tr`).
fn container_ranges(code: &[Tok]) -> Vec<Container> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let is_impl = code.get(i).is_some_and(|t| t.is_ident("impl"));
        let is_trait = code.get(i).is_some_and(|t| t.is_ident("trait"))
            && code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_angles(code, j);
        }
        // Walk the header to the block, skipping generic arguments, and
        // remember the last path ident seen after `for` (or overall).
        let mut name: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        let mut open = None;
        while let Some(t) = code.get(j) {
            if t.is_punct('<') {
                j = skip_angles(code, j);
                continue;
            }
            if t.is_punct('{') {
                open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            if t.is_ident("where") {
                // Bounds may mention unrelated types; stop naming.
                j += 1;
                continue;
            }
            if t.is_ident("for") {
                saw_for = true;
            } else if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "dyn" | "mut") {
                if saw_for {
                    after_for.get_or_insert_with(|| t.text.clone());
                } else {
                    name = Some(t.text.clone());
                }
            }
            j += 1;
        }
        if let Some(open) = open {
            if let (Some(close), Some(type_name)) =
                (match_close(code, open, '{', '}'), after_for.or(name))
            {
                out.push(Container {
                    type_name,
                    open,
                    close,
                });
            }
        }
        i = j + 1;
    }
    out
}

/// Index just past the `>` matching the `<` at `open_idx`. `->` arrows
/// inside the group (e.g. `Box<dyn Fn() -> T>`) do not close it.
fn skip_angles(code: &[Tok], open_idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open_idx;
    while let Some(t) = code.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !code.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

/// Splits the parameter tokens on top-level commas and extracts each
/// binding name plus whether its type mentions a lock.
fn parse_params(toks: &[Tok]) -> Vec<Param> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut k = 0;
    while k <= toks.len() {
        let at_end = k == toks.len();
        let splits =
            at_end || (paren == 0 && angle == 0 && toks.get(k).is_some_and(|t| t.is_punct(',')));
        if splits {
            if let Some(p) = parse_one_param(toks.get(start..k).unwrap_or(&[])) {
                out.push(p);
            }
            start = k + 1;
        } else if let Some(t) = toks.get(k) {
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>')
                && !toks.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct('-'))
            {
                angle -= 1;
            }
        }
        k += 1;
    }
    out
}

fn parse_one_param(toks: &[Tok]) -> Option<Param> {
    let colon = toks.iter().position(|t| t.is_punct(':'));
    let pattern = toks.get(..colon.unwrap_or(toks.len())).unwrap_or(toks);
    let name = pattern
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text != "mut")?
        .text
        .clone();
    let ty = colon.and_then(|c| toks.get(c + 1..)).unwrap_or(&[]);
    let is_lock = ty
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "Mutex" || t.text == "RwLock"));
    Some(Param { name, is_lock })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns_of(src: &str) -> Vec<FnItem> {
        let code: Vec<Tok> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Comment)
            .collect();
        parse_fns(&code)
    }

    #[test]
    fn free_fn_and_method_are_recovered_with_impl_type() {
        let src = "fn free() { let x = 1; }\n\
                   impl Store { fn claim(&self, key: u64) -> bool { true } }\n\
                   impl Drop for Token<'_> { fn drop(&mut self) {} }\n";
        let fns = fns_of(src);
        let names: Vec<(&str, Option<&str>)> = fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("claim", Some("Store")),
                ("drop", Some("Token")),
            ]
        );
        assert!(fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn guard_returning_signatures_and_lock_params_are_flagged() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }\n\
                   fn plain(q: &Mutex<u32>, n: usize) {}\n";
        let fns = fns_of(src);
        let lock = fns.iter().find(|f| f.name == "lock").unwrap();
        assert!(lock.returns_guard);
        assert_eq!(lock.params.len(), 1);
        assert!(lock.params[0].is_lock);
        assert_eq!(lock.params[0].name, "m");
        let plain = fns.iter().find(|f| f.name == "plain").unwrap();
        assert!(!plain.returns_guard);
        assert!(plain.params[0].is_lock);
        assert!(!plain.params[1].is_lock);
    }

    #[test]
    fn nested_fns_where_clauses_and_trait_decls_parse() {
        let src = "fn outer<F>(f: F) -> u32 where F: Fn(u32) -> u32 {\n\
                       fn inner(x: u32) -> u32 { x }\n\
                       f(inner(1))\n\
                   }\n\
                   trait Vfs { fn open(&self) -> bool; fn probe(&self) -> bool { true } }\n";
        let fns = fns_of(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "open", "probe"]);
        let open = fns.iter().find(|f| f.name == "open").unwrap();
        assert!(open.body.is_none(), "trait decl has no body");
        assert_eq!(open.impl_type.as_deref(), Some("Vfs"));
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.body.is_some());
        assert_eq!(outer.end_line, 4);
    }

    #[test]
    fn params_with_generic_commas_split_correctly() {
        let src = "fn f(map: &BTreeMap<u64, Vec<u8>>, cv: &Condvar) {}\n";
        let fns = fns_of(src);
        let f = fns.first().unwrap();
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["map", "cv"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fns = fns_of("struct R { check: fn(&u32) -> bool }\nfn real() {}\n");
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["real"]);
    }
}

//! The `ena-lint` binary. See `ena-lint --help`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ena-lint — determinism, robustness & concurrency static analysis for the ENA workspace

usage: ena-lint [--root DIR] [--config FILE] [--deny-warnings] [--json]
                [--emit-lock-graph FILE] [--list-rules]

  --root DIR             workspace root (default: nearest [workspace] above cwd)
  --config FILE          lint.toml path (default: <root>/lint.toml)
  --deny-warnings        exit non-zero on warnings too
  --json                 print machine-readable diagnostics instead of text
  --emit-lock-graph FILE write the inferred lock-acquisition graph to FILE
  --list-rules           print the rule ids and exit

exit status: 0 clean, 1 diagnostics, 2 tool error";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if take_flag(&mut args, "--list-rules") {
        for rule in ena_lint::rules::PER_FILE {
            println!("{:<24} {}", rule.id, rule.summary);
        }
        println!(
            "{:<24} every field of a StableHash struct must be hashed",
            ena_lint::rules::STABLE_HASH_ID
        );
        for (id, summary) in ena_lint::rules::WORKSPACE {
            println!("{id:<24} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    let deny_warnings = take_flag(&mut args, "--deny-warnings");
    let json = take_flag(&mut args, "--json");
    let root = take_value(&mut args, "--root").map(PathBuf::from);
    let config_path = take_value(&mut args, "--config").map(PathBuf::from);
    let lock_graph_path = take_value(&mut args, "--emit-lock-graph").map(PathBuf::from);
    if let Some(stray) = args.first() {
        eprintln!("error: unrecognized argument '{stray}'\n{USAGE}");
        return ExitCode::from(2);
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match ena_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let opts = ena_lint::Options {
        root,
        config_path,
        deny_warnings,
    };
    match ena_lint::run(&opts) {
        Ok(report) => {
            if let Some(path) = lock_graph_path {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        if let Err(e) = std::fs::create_dir_all(parent) {
                            eprintln!("error: creating {}: {e}", parent.display());
                            return ExitCode::from(2);
                        }
                    }
                }
                if let Err(e) = std::fs::write(&path, &report.lock_graph) {
                    eprintln!("error: writing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.failed(deny_warnings) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn take_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 < args.len() {
        let v = args.remove(i + 1);
        args.remove(i);
        Some(v)
    } else {
        args.remove(i);
        None
    }
}

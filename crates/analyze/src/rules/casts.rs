//! `no-narrowing-cast`: truncating `as` casts are banned in library
//! code.
//!
//! A model observable squeezed through `as u8`/`as f32` silently drops
//! precision or wraps, corrupting results without any diagnostic. The
//! rule flags casts to the narrow types only — widening count casts
//! (`as u64`, `as f64`) and the ubiquitous `as usize` stay legal.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::{SourceFile, TargetKind};

/// Rule id.
pub const ID: &str = "no-narrowing-cast";

const NARROW: &[&str] = &["u8", "u16", "i8", "i16", "f32"];

/// Flags `as <narrow-type>` in library code outside `#[cfg(test)]`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.target != TargetKind::Lib || file.exempt_test {
        return Vec::new();
    }
    let mut findings = Vec::new();
    for (i, t) in file.code.iter().enumerate() {
        if !t.is_ident("as") || file.test_lines.contains(t.line) {
            continue;
        }
        if let Some(ty) = file.code.get(i + 1) {
            if ty.kind == TokKind::Ident && NARROW.contains(&ty.text.as_str()) {
                findings.push(Finding {
                    line: t.line,
                    message: format!("`as {}` silently truncates or wraps", ty.text),
                    hint: "widen the destination type, or use `try_from` and surface the \
                           failure as a typed error"
                        .into(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn flags_narrowing_but_not_widening() {
        let f = file_from_source(
            "fn f(x: u64) -> u8 { x as u8 }\nfn g(x: u32) -> u64 { x as u64 }\n\
             fn h(x: f64) -> f32 { x as f32 }\nfn k(x: u32) -> usize { x as usize }\n",
            "src/lib.rs",
        );
        let findings = check(&f);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn test_regions_are_exempt() {
        let f = file_from_source(
            "#[cfg(test)]\nmod tests {\n fn t(x: u64) -> u8 { x as u8 }\n}\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty());
    }
}

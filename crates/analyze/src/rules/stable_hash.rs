//! `stable-hash-coverage`: every field of a struct that implements
//! `StableHash` must be folded into the hash.
//!
//! The sweep cache is content-addressed by `StableHash`. When a config
//! struct grows a field that the hand-written impl forgets, two
//! configurations differing only in that field collide — and the cache
//! silently serves results computed for the *other* one. This is the
//! nastiest failure mode in the workspace (wrong numbers, no error), so
//! the rule cross-references `struct` definitions with their impls at
//! crate scope and demands every named field appear inside the impl
//! block. Tuple and unit structs, and impls for foreign types, are out
//! of scope.

use crate::lexer::{Tok, TokKind};
use crate::rules::Finding;
use crate::scan::{SourceFile, TargetKind};

/// Rule id.
pub const ID: &str = "stable-hash-coverage";

struct StructDef {
    name: String,
    fields: Vec<String>,
}

struct HashImpl {
    type_name: String,
    idents: Vec<String>,
    file_idx: usize,
    line: u32,
}

/// Checks one crate: returns `(file index, finding)` pairs.
pub fn check_crate(files: &[SourceFile]) -> Vec<(usize, Finding)> {
    let mut structs: Vec<StructDef> = Vec::new();
    let mut impls: Vec<HashImpl> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        if file.target != TargetKind::Lib {
            continue;
        }
        collect_structs(&file.code, &mut structs);
        collect_impls(&file.code, idx, &mut impls);
    }
    let mut findings = Vec::new();
    for imp in &impls {
        let Some(def) = structs.iter().find(|s| s.name == imp.type_name) else {
            continue;
        };
        for field in &def.fields {
            if !imp.idents.iter().any(|i| i == field) {
                findings.push((
                    imp.file_idx,
                    Finding {
                        line: imp.line,
                        message: format!(
                            "field `{}` of `{}` is not covered by its StableHash impl",
                            field, imp.type_name
                        ),
                        hint: "hash every field; an unhashed field makes distinct configs \
                               collide to one cache key and serves stale results"
                            .into(),
                    },
                ));
            }
        }
    }
    findings
}

fn collect_structs(code: &[Tok], out: &mut Vec<StructDef>) {
    let mut i = 0;
    while i < code.len() {
        let is_struct = code.get(i).is_some_and(|t| t.is_ident("struct"))
            && code.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident);
        if !is_struct {
            i += 1;
            continue;
        }
        let name = code.get(i + 1).map_or(String::new(), |t| t.text.clone());
        let mut j = i + 2;
        j = skip_generics(code, j);
        // Optional `where` clause: scan to the body start.
        let mut depth = 0i32;
        let body = loop {
            let Some(t) = code.get(j) else { break None };
            if t.kind == TokKind::Punct {
                match t.text.chars().next() {
                    Some('(') | Some('[') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('{') if depth == 0 => break Some(j),
                    Some(';') if depth == 0 => break None, // tuple/unit struct
                    _ => {}
                }
            }
            j += 1;
        };
        if let Some(open) = body {
            out.push(StructDef {
                name,
                fields: parse_fields(code, open),
            });
        }
        i = j.max(i + 2);
    }
}

/// Parses named-field identifiers from the struct body opening at `open`.
fn parse_fields(code: &[Tok], open: usize) -> Vec<String> {
    let mut fields = Vec::new();
    let mut j = open + 1;
    let mut expect_field = true;
    let mut brace = 1i32;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut prev_dash = false;
    while let Some(t) = code.get(j) {
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('{') => brace += 1,
                Some('}') => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                Some('(') | Some('[') => paren += 1,
                Some(')') | Some(']') => paren -= 1,
                Some('<') if brace == 1 && paren == 0 => angle += 1,
                Some('>') if brace == 1 && paren == 0 && !prev_dash => angle = (angle - 1).max(0),
                Some(',') if brace == 1 && paren == 0 && angle == 0 => expect_field = true,
                _ => {}
            }
            prev_dash = t.is_punct('-');
            j += 1;
            continue;
        }
        prev_dash = false;
        if expect_field && brace == 1 && paren == 0 && angle == 0 && t.kind == TokKind::Ident {
            if t.text == "pub" {
                // Visibility, possibly `pub(crate)`: keep looking.
                j += 1;
                continue;
            }
            if code.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                fields.push(t.text.clone());
                expect_field = false;
            }
        }
        j += 1;
    }
    fields
}

fn collect_impls(code: &[Tok], file_idx: usize, out: &mut Vec<HashImpl>) {
    let mut i = 0;
    while i < code.len() {
        if !code.get(i).is_some_and(|t| t.is_ident("impl")) {
            i += 1;
            continue;
        }
        let line = code.get(i).map_or(1, |t| t.line);
        let mut j = skip_generics(code, i + 1);
        if !code.get(j).is_some_and(|t| t.is_ident("StableHash")) {
            i += 1;
            continue;
        }
        j += 1;
        if !code.get(j).is_some_and(|t| t.is_ident("for")) {
            i += 1;
            continue;
        }
        j += 1;
        let Some(name_tok) = code.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i = j;
            continue;
        }
        let type_name = name_tok.text.clone();
        // Find the impl block and collect every identifier inside it.
        let mut k = j + 1;
        while code.get(k).is_some_and(|t| !t.is_punct('{')) {
            k += 1;
        }
        let mut depth = 0i32;
        let mut idents = Vec::new();
        while let Some(t) = code.get(k) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokKind::Ident {
                idents.push(t.text.clone());
            }
            k += 1;
        }
        out.push(HashImpl {
            type_name,
            idents,
            file_idx,
            line,
        });
        i = k.max(i + 1);
    }
}

/// Skips a `<...>` generics group starting at `j`, if present.
fn skip_generics(code: &[Tok], j: usize) -> usize {
    if !code.get(j).is_some_and(|t| t.is_punct('<')) {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while let Some(t) = code.get(k) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn missing_field_is_reported_complete_impl_passes() {
        let f = file_from_source(
            "pub struct Cfg { pub a: u32, pub b: f64 }\n\
             pub struct Ok2 { pub x: u32 }\n\
             impl StableHash for Cfg {\n fn stable_hash(&self, h: &mut H) { self.a.stable_hash(h); }\n}\n\
             impl StableHash for Ok2 {\n fn stable_hash(&self, h: &mut H) { self.x.stable_hash(h); }\n}\n",
            "src/lib.rs",
        );
        let findings = check_crate(&[f]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let (_, finding) = findings.first().expect("one finding");
        assert!(finding.message.contains("`b`"), "{}", finding.message);
    }

    #[test]
    fn tuple_structs_and_foreign_impls_are_skipped() {
        let f = file_from_source(
            "pub struct Hz(pub f64);\n\
             impl StableHash for Hz {\n fn stable_hash(&self, h: &mut H) { self.0.stable_hash(h); }\n}\n\
             impl<T: StableHash> StableHash for Vec<T> {\n fn stable_hash(&self, h: &mut H) {}\n}\n",
            "src/lib.rs",
        );
        assert!(check_crate(&[f]).is_empty());
    }

    #[test]
    fn generic_field_types_do_not_derail_field_parsing() {
        let f = file_from_source(
            "pub struct M { pub table: BTreeMap<u64, u64>, pub tail: f64 }\n\
             impl StableHash for M {\n fn h(&self) { self.table; self.tail; }\n}\n",
            "src/lib.rs",
        );
        let findings = check_crate(&[f]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn defs_and_impls_pair_across_files_of_one_crate() {
        let def = file_from_source("pub struct C { pub v: u32 }\n", "src/config.rs");
        let imp = file_from_source(
            "impl StableHash for C {\n fn h(&self) { /* forgot v */ }\n}\n",
            "src/hash.rs",
        );
        let findings = check_crate(&[def, imp]);
        assert_eq!(findings.len(), 1);
        let (idx, _) = findings.first().expect("one finding");
        assert_eq!(*idx, 1, "finding lands in the impl file");
    }
}

//! `no-panic-in-lib`: library code must not contain reachable panic
//! sites.
//!
//! The graceful-degradation story (`ena-faults`) only holds if the
//! layers below it return typed errors instead of tearing the process
//! down. Policed shapes, in `Lib` targets outside `#[cfg(test)]`:
//!
//! - `.unwrap()` / `.expect(...)` calls (path form `::unwrap()` too)
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!`
//! - indexing by an integer literal (`xs[0]`), the silent cousin of
//!   `unwrap` — `xs.first()` says what it means and is total
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: they are
//! the sanctioned way to state contract violations that indicate a bug
//! in this codebase rather than degradable runtime conditions.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::{SourceFile, TargetKind};

/// Rule id.
pub const ID: &str = "no-panic-in-lib";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Flags panic sites in library code outside `#[cfg(test)]`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.target != TargetKind::Lib || file.exempt_test {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if file.test_lines.contains(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let called = code.get(i + 1).is_some_and(|n| n.is_punct('('));
            let receiver = code
                .get(i.wrapping_sub(1))
                .is_some_and(|p| i > 0 && (p.is_punct('.') || p.is_punct(':')));
            if called && receiver {
                findings.push(Finding {
                    line: t.line,
                    message: format!("`.{}()` panics in library code", t.text),
                    hint: "return a typed error, or restructure so the invariant lives in \
                           the types (let-else, match, total accessors)"
                        .into(),
                });
            }
        }
        if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) {
            let is_macro = code.get(i + 1).is_some_and(|n| n.is_punct('!'));
            if is_macro {
                findings.push(Finding {
                    line: t.line,
                    message: format!("`{}!` panics in library code", t.text),
                    hint: "make the surrounding API return a typed error; if the state is \
                           truly impossible, make it unrepresentable instead"
                        .into(),
                });
            }
        }
        if t.is_punct('[') {
            let indexable = i > 0
                && code.get(i - 1).is_some_and(|p| {
                    p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']')
                });
            let literal = code.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
                && code.get(i + 2).is_some_and(|n| n.is_punct(']'));
            if indexable && literal {
                findings.push(Finding {
                    line: t.line,
                    message: "indexing by an integer literal panics when the collection is \
                              shorter than expected"
                        .into(),
                    hint: "use `.first()`/`.get(n)` or destructure with a slice pattern".into(),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn flags_unwrap_expect_macros_and_literal_indexing() {
        let f = file_from_source(
            "fn f(v: Vec<u32>) -> u32 {\n\
             let a = v.first().unwrap();\n\
             let b = v.get(1).expect(\"second\");\n\
             if v.is_empty() { panic!(\"empty\") }\n\
             let c = v[0];\n\
             *a + *b + c\n}\n",
            "src/lib.rs",
        );
        let findings = check(&f);
        assert_eq!(findings.len(), 4, "{findings:?}");
    }

    #[test]
    fn asserts_total_methods_and_tests_are_exempt() {
        let f = file_from_source(
            "fn f(v: &[u32]) -> u32 {\n\
             assert!(!v.is_empty());\n\
             debug_assert!(v.len() > 1);\n\
             v.first().copied().unwrap_or(0)\n}\n\
             #[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn array_literals_and_attribute_brackets_are_not_indexing() {
        let f = file_from_source(
            "#[derive(Debug)]\nstruct X;\nfn f() -> [u32; 2] { let _s = &[0, 1]; [0, 1] }\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn non_lib_targets_are_out_of_scope() {
        let f = file_from_source("fn main() { Some(1).unwrap(); }", "tests/e2e.rs");
        assert!(check(&f).is_empty());
        let f = file_from_source("fn main() { Some(1).unwrap(); }", "src/bin/tool.rs");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn mentions_in_strings_and_comments_pass() {
        let f = file_from_source(
            "// .unwrap() would panic! here\nconst HELP: &str = \"never unwrap()\";\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty());
    }
}

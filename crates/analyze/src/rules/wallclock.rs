//! `no-wallclock`: reading the host clock is quarantined behind the
//! `timing` cargo feature.
//!
//! Default builds must be wallclock-free: a golden artifact or cache
//! entry whose bytes depend on elapsed time can never be reproduced.
//! `Instant`/`SystemTime` may appear only inside
//! `#[cfg(feature = "timing")]`-gated items (or test code). Bench
//! targets are out of scope — measuring time is their whole job, and
//! they already opt into the feature.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::{SourceFile, TargetKind};

/// Rule id.
pub const ID: &str = "no-wallclock";

/// Flags `Instant`/`SystemTime` outside timing-gated regions.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.target == TargetKind::Bench || file.exempt_timing || file.exempt_test {
        return Vec::new();
    }
    file.code
        .iter()
        .filter(|t| {
            t.kind == TokKind::Ident
                && (t.text == "Instant" || t.text == "SystemTime")
                && !file.timing_lines.contains(t.line)
                && !file.test_lines.contains(t.line)
        })
        .map(|t| Finding {
            line: t.line,
            message: format!("`{}` read outside the `timing` feature", t.text),
            hint: "gate the clock behind `#[cfg(feature = \"timing\")]` (or inject it) so \
                   default builds stay wallclock-free"
                .into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn flags_bare_instant_and_systemtime() {
        let f = file_from_source(
            "use std::time::Instant;\nfn f() { let _t = std::time::SystemTime::now(); }\n",
            "src/lib.rs",
        );
        assert_eq!(check(&f).len(), 2);
    }

    #[test]
    fn timing_gated_items_pass() {
        let f = file_from_source(
            "#[cfg(feature = \"timing\")]\nfn measure() { let _t = std::time::Instant::now(); }\n\
             use std::time::Duration;\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn bench_targets_are_out_of_scope() {
        let f = file_from_source(
            "fn main() { let _ = std::time::Instant::now(); }",
            "benches/b.rs",
        );
        assert!(check(&f).is_empty());
    }
}

//! `no-ignored-io-result`: discarding a filesystem `Result` with
//! `let _ =` is banned in library code.
//!
//! An ignored I/O error is exactly how acknowledged data gets lost: the
//! write "succeeded" as far as the caller can tell, but nothing reached
//! the disk. Library code must propagate filesystem failures as typed
//! errors (or match on the error kind when a failure is genuinely
//! tolerable, e.g. `NotFound` on cleanup). The rule flags
//! `let _ = <expr>;` statements whose expression calls into `fs::...`
//! or one of the durability-critical I/O methods. Infallible sinks —
//! `fmt::Write` macros like `write!`/`writeln!` into a `String` — are
//! not I/O and stay legal.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::{SourceFile, TargetKind};

/// Rule id.
pub const ID: &str = "no-ignored-io-result";

/// Method/function names whose `Result` must not be discarded: losing
/// one of these errors can lose user data or hide a failed cleanup.
const IO_CALLS: &[&str] = &[
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "create_dir",
    "create_dir_all",
    "rename",
    "copy",
    "hard_link",
    "set_permissions",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
];

/// Flags `let _ = <fs call>;` in library code outside `#[cfg(test)]`.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if file.target != TargetKind::Lib || file.exempt_test {
        return Vec::new();
    }
    let code = &file.code;
    let mut findings = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Match the statement head: `let _ =` (and not `let _x` or `==`).
        let head = i;
        let is_discard = code[head].is_ident("let")
            && code.get(head + 1).is_some_and(|t| t.is_ident("_"))
            && code.get(head + 2).is_some_and(|t| t.is_punct('='))
            && !code.get(head + 3).is_some_and(|t| t.is_punct('='));
        if !is_discard || file.test_lines.contains(code[head].line) {
            i += 1;
            continue;
        }
        // Scan the discarded expression up to its terminating `;`.
        let mut j = head + 3;
        let mut culprit: Option<String> = None;
        while j < code.len() && !code[j].is_punct(';') {
            let t = &code[j];
            if t.kind == TokKind::Ident {
                // A macro invocation (`writeln!`) is fmt, not fs.
                let is_macro = code.get(j + 1).is_some_and(|n| n.is_punct('!'));
                let qualified_fs = t.is_ident("fs")
                    && code.get(j + 1).is_some_and(|n| n.is_punct(':'))
                    && code.get(j + 2).is_some_and(|n| n.is_punct(':'));
                let io_method = IO_CALLS.contains(&t.text.as_str())
                    && code.get(j + 1).is_some_and(|n| n.is_punct('('))
                    && j > 0
                    && (code[j - 1].is_punct('.') || code[j - 1].is_punct(':'));
                if !is_macro && qualified_fs {
                    // Name the called function (`fs::remove_file`), not
                    // just the module path.
                    let callee = code
                        .get(j + 3)
                        .filter(|n| n.kind == TokKind::Ident)
                        .map_or_else(String::new, |n| n.text.clone());
                    culprit = Some(format!("fs::{callee}"));
                    break;
                }
                if !is_macro && io_method {
                    culprit = Some(t.text.clone());
                    break;
                }
            }
            j += 1;
        }
        if let Some(name) = culprit {
            findings.push(Finding {
                line: code[head].line,
                message: format!("`let _ =` discards the `Result` of I/O call `{name}`"),
                hint: "propagate the error as a typed failure, or match on the \
                       `ErrorKind` if this specific failure is tolerable"
                    .into(),
            });
        }
        i = j.max(head + 1);
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn flags_discarded_fs_and_io_method_results() {
        let f = file_from_source(
            "fn f(p: &std::path::Path) {\n\
             \x20   let _ = std::fs::remove_file(p);\n\
             \x20   let _ = writer.sync_all();\n\
             }\n",
            "src/lib.rs",
        );
        let findings = check(&f);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("fs"), "{findings:?}");
        assert!(findings[1].message.contains("sync_all"), "{findings:?}");
    }

    #[test]
    fn fmt_writes_and_bindings_are_legal() {
        let f = file_from_source(
            "use std::fmt::Write as _;\n\
             fn f(out: &mut String) {\n\
             \x20   let _ = writeln!(out, \"x\");\n\
             \x20   let _unused = std::fs::remove_file(\"p\");\n\
             \x20   let r = file.sync_all();\n\
             \x20   drop(r);\n\
             }\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty(), "{:?}", check(&f));
    }

    #[test]
    fn test_regions_and_non_lib_targets_are_exempt() {
        let f = file_from_source(
            "#[cfg(test)]\nmod tests {\n fn t() { let _ = std::fs::remove_file(\"p\"); }\n}\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty());
        let t = file_from_source(
            "fn t() { let _ = std::fs::remove_file(\"p\"); }\n",
            "tests/x.rs",
        );
        assert!(check(&t).is_empty());
    }
}

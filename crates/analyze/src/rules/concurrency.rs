//! The five workspace-level concurrency rules.
//!
//! All of them read the semantic model built by [`crate::sema`]: the
//! per-function lock/call/wait/blocking event streams and the resolved
//! transitive facts. Unlike the per-file rules these are properties of
//! the *workspace* — a lock-order cycle needs two functions, possibly
//! in two crates — so findings carry their `(crate, file)` index and
//! are routed back through the normal per-file suppression machinery
//! by the engine.
//!
//! - `lock-order-cycle` — a cycle in the lock-acquisition graph; the
//!   diagnostic carries the full witness chain (every edge with its
//!   acquiring function and location).
//! - `double-lock` — re-acquiring a lock already held, directly or via
//!   a call path (`std::sync::Mutex` self-deadlocks on this).
//! - `condvar-wait-not-in-loop` — a condvar wait whose predicate is
//!   not re-checked in a `while`/`loop`; spurious wakeups are legal.
//! - `blocking-under-lock` — I/O, fsync, sleep, or an `evaluate_*`
//!   engine entry reached while a guard is live, outside functions
//!   annotated `// ena:durability(lock): why`.
//! - `guard-across-wait` — holding guard A while waiting on a condvar
//!   paired with lock B: the wait releases only B, so A stays pinned
//!   for an unbounded sleep.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::rules::{Finding, INVALID_ALLOW_ID, UNUSED_ALLOW_ID};
use crate::scan::{CrateSrc, TargetKind};
use crate::sema::{find_cycles, Model, Resolved};

/// Cycle in the workspace lock-acquisition graph.
pub const LOCK_ORDER_ID: &str = "lock-order-cycle";
/// Re-acquiring a lock already held on some path.
pub const DOUBLE_LOCK_ID: &str = "double-lock";
/// Condvar wait not re-checked in a loop.
pub const CONDVAR_LOOP_ID: &str = "condvar-wait-not-in-loop";
/// Blocking operation reached while a guard is live.
pub const BLOCKING_ID: &str = "blocking-under-lock";
/// Holding one guard while waiting on a condvar paired with another.
pub const GUARD_WAIT_ID: &str = "guard-across-wait";

/// All five ids, for the registry.
pub const IDS: &[&str] = &[
    LOCK_ORDER_ID,
    DOUBLE_LOCK_ID,
    CONDVAR_LOOP_ID,
    BLOCKING_ID,
    GUARD_WAIT_ID,
];

/// A workspace finding, tagged with the `(crate, file)` it anchors to.
#[derive(Clone, Debug)]
pub struct WsFinding {
    /// Rule id.
    pub rule: &'static str,
    /// `(crate index, file index)` into the scanned workspace.
    pub file_idx: (usize, usize),
    /// The finding itself.
    pub finding: Finding,
}

/// Everything the engine needs from the workspace phase.
#[derive(Debug)]
pub struct WorkspaceAnalysis {
    /// Suppressible rule findings.
    pub findings: Vec<WsFinding>,
    /// Non-suppressible meta diagnostics about durability annotations
    /// (reserved ids, like the allow machinery's own).
    pub meta: Vec<WsFinding>,
    /// Deterministic `artifacts/lock_graph.txt` contents.
    pub lock_graph: String,
}

/// Builds the semantic model over `crates` and runs all five rules.
pub fn check_workspace(crates: &[CrateSrc]) -> WorkspaceAnalysis {
    let model = Model::build(crates);
    let resolved = model.analyze();
    let mut findings = Vec::new();
    let mut used_durability: BTreeSet<(String, u32)> = BTreeSet::new();

    check_double_lock(&model, &resolved, &mut findings);
    check_lock_order(&model, &resolved, crates, &mut findings);
    check_condvar_loop(&model, &mut findings);
    check_blocking(&model, &resolved, &mut findings, &mut used_durability);
    check_guard_across_wait(&model, &mut findings);

    let meta = durability_meta(crates, &used_durability);
    WorkspaceAnalysis {
        findings,
        meta,
        lock_graph: model.render_lock_graph(&resolved),
    }
}

/// Short lock name (`crate/lock` → `lock`).
fn short(lock: &str) -> &str {
    lock.rsplit('/').next().unwrap_or(lock)
}

fn check_double_lock(model: &Model, resolved: &Resolved, out: &mut Vec<WsFinding>) {
    for (id, f) in model.fns.iter().enumerate() {
        for a in &f.acquires {
            if let Some(h) = a.held.iter().find(|h| h.lock == a.lock) {
                out.push(WsFinding {
                    rule: DOUBLE_LOCK_ID,
                    file_idx: f.file_idx,
                    finding: Finding {
                        line: a.line,
                        message: format!(
                            "lock `{}` is re-acquired while already held (guard taken at line {})",
                            a.lock, h.line
                        ),
                        hint: "merge the two critical sections, or drop the first guard \
                               before re-locking (std mutexes self-deadlock here)"
                            .into(),
                    },
                });
            }
        }
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for (ci, c) in f.calls.iter().enumerate() {
            if c.held.is_empty() {
                continue;
            }
            let callees = resolved
                .edges
                .get(id)
                .and_then(|e| e.get(ci))
                .cloned()
                .unwrap_or_default();
            for callee in callees {
                let Some(acqs) = resolved.acquires.get(callee) else {
                    continue;
                };
                for h in &c.held {
                    let Some(w) = acqs.get(&h.lock) else { continue };
                    if !seen.insert((c.line, h.lock.clone())) {
                        continue;
                    }
                    let mut path = vec![f.display()];
                    path.extend(w.path.iter().cloned());
                    out.push(WsFinding {
                        rule: DOUBLE_LOCK_ID,
                        file_idx: f.file_idx,
                        finding: Finding {
                            line: c.line,
                            message: format!(
                                "call to `{}` re-acquires lock `{}` already held since line {}",
                                c.target.name(),
                                h.lock,
                                h.line
                            ),
                            hint: format!(
                                "path: {} (acquired at {}:{}); release the guard before \
                                 this call",
                                path.join(" -> "),
                                w.file,
                                w.line
                            ),
                        },
                    });
                }
            }
        }
    }
}

fn check_lock_order(
    model: &Model,
    resolved: &Resolved,
    crates: &[CrateSrc],
    out: &mut Vec<WsFinding>,
) {
    let graph = model.lock_graph(resolved);
    let file_index = file_index_map(crates);
    for cycle in find_cycles(&graph) {
        let Some(anchor) = cycle
            .edges
            .iter()
            .min_by(|a, b| (a.1.file.as_str(), a.1.line).cmp(&(b.1.file.as_str(), b.1.line)))
        else {
            continue;
        };
        let Some(&file_idx) = file_index.get(anchor.1.file.as_str()) else {
            continue;
        };
        let witness = cycle
            .edges
            .iter()
            .map(|((from, to), info)| {
                format!(
                    "{from} -> {to} at {}:{} via {}",
                    info.file, info.line, info.via
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        out.push(WsFinding {
            rule: LOCK_ORDER_ID,
            file_idx,
            finding: Finding {
                line: anchor.1.line,
                message: format!("lock-order cycle: {}", cycle.nodes.join(" -> ")),
                hint: format!(
                    "witness: {witness}; pick one global acquisition order and document \
                     it where the locks are declared"
                ),
            },
        });
    }
}

fn check_condvar_loop(model: &Model, out: &mut Vec<WsFinding>) {
    for f in &model.fns {
        for w in &f.waits {
            if w.in_loop {
                continue;
            }
            out.push(WsFinding {
                rule: CONDVAR_LOOP_ID,
                file_idx: f.file_idx,
                finding: Finding {
                    line: w.line,
                    message: "condvar wait is not re-checked in a `while`/`loop`".into(),
                    hint: "spurious wakeups are legal: loop on the predicate — \
                           `while !ready { guard = cv.wait(guard)...; }`"
                        .into(),
                },
            });
        }
    }
}

fn check_blocking(
    model: &Model,
    resolved: &Resolved,
    out: &mut Vec<WsFinding>,
    used_durability: &mut BTreeSet<(String, u32)>,
) {
    for (id, f) in model.fns.iter().enumerate() {
        // A justified durability annotation on this function exempts
        // blocking performed under the named lock.
        let mut exempt = |held: &[crate::sema::Held]| -> bool {
            let mut hit = false;
            for d in &f.durability {
                if d.justification.is_empty() {
                    continue; // reported as meta elsewhere
                }
                if held.iter().any(|h| short(&h.lock) == d.lock) {
                    used_durability.insert((f.rel_path.clone(), d.line));
                    hit = true;
                }
            }
            hit
        };
        for b in &f.blocking {
            let Some(h) = b.held.first() else { continue };
            if exempt(&b.held) {
                continue;
            }
            out.push(WsFinding {
                rule: BLOCKING_ID,
                file_idx: f.file_idx,
                finding: Finding {
                    line: b.line,
                    message: format!(
                        "blocking `{}` while lock `{}` is held (guard taken at line {})",
                        b.what, h.lock, h.line
                    ),
                    hint: format!(
                        "move the operation outside the critical section, or mark the \
                         function `// ena:durability({}): <why>` if holding through it \
                         is the durability contract",
                        short(&h.lock)
                    ),
                },
            });
        }
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        for (ci, c) in f.calls.iter().enumerate() {
            let Some(h) = c.held.first() else { continue };
            let callees = resolved
                .edges
                .get(id)
                .and_then(|e| e.get(ci))
                .cloned()
                .unwrap_or_default();
            let Some(w) = callees
                .iter()
                .find_map(|callee| resolved.blocking.get(*callee).cloned().flatten())
            else {
                continue;
            };
            if exempt(&c.held) || !seen.insert(c.line) {
                continue;
            }
            let mut path = vec![f.display()];
            path.extend(w.path.iter().cloned());
            out.push(WsFinding {
                rule: BLOCKING_ID,
                file_idx: f.file_idx,
                finding: Finding {
                    line: c.line,
                    message: format!(
                        "call to `{}` reaches blocking `{}` while lock `{}` is held",
                        c.target.name(),
                        w.what,
                        h.lock
                    ),
                    hint: format!(
                        "path: {} (blocks at {}:{}); release the guard first, or \
                         annotate `// ena:durability({}): <why>`",
                        path.join(" -> "),
                        w.file,
                        w.line,
                        short(&h.lock)
                    ),
                },
            });
        }
    }
}

fn check_guard_across_wait(model: &Model, out: &mut Vec<WsFinding>) {
    for f in &model.fns {
        for w in &f.waits {
            let Some(other) = w.others_held.first() else {
                continue;
            };
            let paired = w.guard_lock.as_deref().unwrap_or("<unknown>");
            out.push(WsFinding {
                rule: GUARD_WAIT_ID,
                file_idx: f.file_idx,
                finding: Finding {
                    line: w.line,
                    message: format!(
                        "guard on `{}` held across a condvar wait (the wait releases \
                         only `{paired}`)",
                        other.lock
                    ),
                    hint: "drop the unrelated guard before waiting — anything needing \
                           it blocks for the full (unbounded) sleep"
                        .into(),
                },
            });
        }
    }
}

/// Meta diagnostics for durability annotations: missing justification,
/// or exempting nothing (stale).
fn durability_meta(
    crates: &[CrateSrc],
    used_durability: &BTreeSet<(String, u32)>,
) -> Vec<WsFinding> {
    let mut out = Vec::new();
    for (ci, krate) in crates.iter().enumerate() {
        for (fi, file) in krate.files.iter().enumerate() {
            let analyzed = matches!(file.target, TargetKind::Lib | TargetKind::Bin)
                && !file.exempt_test
                && !file.exempt_timing;
            if !analyzed {
                continue;
            }
            for d in &file.durability {
                if d.justification.is_empty() {
                    out.push(WsFinding {
                        rule: INVALID_ALLOW_ID,
                        file_idx: (ci, fi),
                        finding: Finding {
                            line: d.line,
                            message: format!(
                                "durability annotation for `{}` has no justification",
                                d.lock
                            ),
                            hint: "append `: <why blocking under this lock is the \
                                   design>`"
                                .into(),
                        },
                    });
                } else if !used_durability.contains(&(file.rel_path.clone(), d.line)) {
                    out.push(WsFinding {
                        rule: UNUSED_ALLOW_ID,
                        file_idx: (ci, fi),
                        finding: Finding {
                            line: d.line,
                            message: format!(
                                "durability annotation for `{}` exempts nothing",
                                d.lock
                            ),
                            hint: "delete the stale annotation, or move it into the \
                                   function that blocks under the lock"
                                .into(),
                        },
                    });
                }
            }
        }
    }
    out
}

/// Maps workspace-relative paths back to `(crate, file)` indexes.
fn file_index_map(crates: &[CrateSrc]) -> BTreeMap<&str, (usize, usize)> {
    let mut map = BTreeMap::new();
    for (ci, krate) in crates.iter().enumerate() {
        for (fi, file) in krate.files.iter().enumerate() {
            map.insert(file.rel_path.as_str(), (ci, fi));
        }
    }
    map
}

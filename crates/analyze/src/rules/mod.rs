//! The rule registry.
//!
//! Two kinds of rule exist: per-file rules (a pure function of one
//! [`SourceFile`](crate::scan::SourceFile)) and the crate-level
//! [`stable_hash`] rule, which needs every file of a crate at once to
//! pair `struct` definitions with their `StableHash` impls.

pub mod casts;
pub mod concurrency;
pub mod ignored_io;
pub mod panic;
pub mod stable_hash;
pub mod unordered;
pub mod unsafe_header;
pub mod wallclock;

use crate::scan::SourceFile;

/// A raw finding before severity/suppression are applied.
#[derive(Clone, Debug)]
pub struct Finding {
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

/// One per-file rule.
pub struct RuleDef {
    /// Stable identifier used in `lint.toml` and allow directives.
    pub id: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// The check itself.
    pub check: fn(&SourceFile) -> Vec<Finding>,
}

/// Per-file rules in evaluation order.
pub const PER_FILE: &[RuleDef] = &[
    RuleDef {
        id: unordered::ID,
        summary: "HashMap/HashSet iterate in a process-random order; require BTree collections",
        check: unordered::check,
    },
    RuleDef {
        id: panic::ID,
        summary: "no unwrap/expect/panic!/unreachable!/literal-indexing in library code",
        check: panic::check,
    },
    RuleDef {
        id: wallclock::ID,
        summary: "no Instant/SystemTime outside the `timing` feature",
        check: wallclock::check,
    },
    RuleDef {
        id: unsafe_header::ID,
        summary: "every crate root must carry #![forbid(unsafe_code)]",
        check: unsafe_header::check,
    },
    RuleDef {
        id: casts::ID,
        summary: "no truncating `as` casts (u8/u16/i8/i16/f32) on model values",
        check: casts::check,
    },
    RuleDef {
        id: ignored_io::ID,
        summary: "no `let _ =` discarding a filesystem/durability `Result` in library code",
        check: ignored_io::check,
    },
];

/// Crate-level rule id (see [`stable_hash`]).
pub const STABLE_HASH_ID: &str = stable_hash::ID;

/// Engine-reserved diagnostics about the suppression machinery itself.
pub const INVALID_ALLOW_ID: &str = "invalid-allow";
/// Engine-reserved: a directive that suppressed nothing.
pub const UNUSED_ALLOW_ID: &str = "unused-allow";

/// Workspace-level (semantic) rules with their `--list-rules` text.
pub const WORKSPACE: &[(&str, &str)] = &[
    (
        concurrency::LOCK_ORDER_ID,
        "no cycles in the workspace lock-acquisition graph (deadlock by inversion)",
    ),
    (
        concurrency::DOUBLE_LOCK_ID,
        "no re-acquiring a lock already held on some call path (std self-deadlock)",
    ),
    (
        concurrency::CONDVAR_LOOP_ID,
        "condvar waits must re-check their predicate in a while/loop",
    ),
    (
        concurrency::BLOCKING_ID,
        "no I/O/fsync/sleep/evaluate_* under a lock outside ena:durability sections",
    ),
    (
        concurrency::GUARD_WAIT_ID,
        "no holding one guard while waiting on a condvar paired with another",
    ),
];

/// Every id accepted in `lint.toml` and allow directives.
pub fn all_rule_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = PER_FILE.iter().map(|r| r.id).collect();
    ids.push(STABLE_HASH_ID);
    ids.extend(WORKSPACE.iter().map(|(id, _)| *id));
    ids
}

/// True when `id` names a configurable rule.
pub fn is_known_rule(id: &str) -> bool {
    all_rule_ids().iter().any(|r| *r == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_known() {
        let ids = all_rule_ids();
        for id in &ids {
            assert!(is_known_rule(id));
            assert_eq!(ids.iter().filter(|o| *o == id).count(), 1, "{id}");
        }
        assert!(!is_known_rule("not-a-rule"));
        assert!(
            !is_known_rule(INVALID_ALLOW_ID),
            "meta ids are not configurable"
        );
    }
}

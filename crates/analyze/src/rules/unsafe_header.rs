//! `forbid-unsafe`: every crate root must open with
//! `#![forbid(unsafe_code)]`.
//!
//! The whole workspace is an analytical model — there is no FFI and no
//! hand-tuned data structure that could justify `unsafe`. Forbidding it
//! at every crate root (libraries *and* binaries) turns that design
//! decision into a compile error rather than a review convention.

use crate::rules::Finding;
use crate::scan::SourceFile;

/// Rule id.
pub const ID: &str = "forbid-unsafe";

/// True for files that are a crate root (lib or bin entry point).
fn is_crate_root(in_crate: &str) -> bool {
    if in_crate == "src/lib.rs" || in_crate == "src/main.rs" {
        return true;
    }
    in_crate
        .strip_prefix("src/bin/")
        .is_some_and(|rest| !rest.contains('/') && rest.ends_with(".rs"))
}

/// Requires the `#![forbid(unsafe_code)]` inner attribute in crate roots.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    if !is_crate_root(&file.in_crate) {
        return Vec::new();
    }
    let code = &file.code;
    let found = code.iter().enumerate().any(|(i, t)| {
        t.is_punct('#')
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && code.get(i + 2).is_some_and(|n| n.is_punct('['))
            && code.get(i + 3).is_some_and(|n| n.is_ident("forbid"))
            && code.get(i + 4).is_some_and(|n| n.is_punct('('))
            && code.get(i + 5).is_some_and(|n| n.is_ident("unsafe_code"))
    });
    if found {
        Vec::new()
    } else {
        vec![Finding {
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".into(),
            hint: "add the inner attribute at the top of the file".into(),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn present_header_passes_missing_header_fails() {
        let ok = file_from_source("#![forbid(unsafe_code)]\nfn f() {}\n", "src/lib.rs");
        assert!(check(&ok).is_empty());
        let bad = file_from_source("fn f() {}\n", "src/lib.rs");
        assert_eq!(check(&bad).len(), 1);
    }

    #[test]
    fn only_crate_roots_are_checked() {
        let f = file_from_source("fn f() {}\n", "src/module.rs");
        assert!(check(&f).is_empty());
        let b = file_from_source("fn main() {}\n", "src/bin/tool.rs");
        assert_eq!(check(&b).len(), 1);
    }
}

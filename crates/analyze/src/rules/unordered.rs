//! `no-unordered-iteration`: hash-based collections are banned
//! everywhere.
//!
//! `HashMap`/`HashSet` seed their hasher per process, so iteration
//! order differs run to run. Any such collection sitting anywhere near
//! a result-producing path (golden artifacts, the sweep cache, report
//! rendering) is a latent nondeterminism bug, and experience says they
//! migrate from tests into library code through copy-paste — so the
//! rule flags the types themselves, in every target including tests.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scan::SourceFile;

/// Rule id.
pub const ID: &str = "no-unordered-iteration";

/// Flags every `HashMap`/`HashSet` identifier.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    file.code
        .iter()
        .filter(|t| t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet"))
        .map(|t| Finding {
            line: t.line,
            message: format!("`{}` iterates in a process-random order", t.text),
            hint: format!(
                "use `{}` (or a sorted drain) so every run visits entries identically",
                if t.text == "HashMap" {
                    "BTreeMap"
                } else {
                    "BTreeSet"
                }
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::file_from_source;

    #[test]
    fn flags_hash_collections_even_in_tests() {
        let f = file_from_source(
            "use std::collections::HashMap;\n#[cfg(test)]\nmod t { use std::collections::HashSet; }\n",
            "src/lib.rs",
        );
        let findings = check(&f);
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn btree_collections_and_strings_pass() {
        let f = file_from_source(
            "use std::collections::BTreeMap;\nconst DOC: &str = \"HashMap\";\n",
            "src/lib.rs",
        );
        assert!(check(&f).is_empty());
    }
}

//! Workspace-wide semantic model for the concurrency rules.
//!
//! Built on [`crate::parser`]'s recovered function items, this module
//! derives, per function, an ordered event stream of lock
//! *acquisitions*, *calls*, condvar *waits*, and *blocking operations*
//! — each annotated with the set of lock guards live at that point —
//! plus an approximate workspace call graph to propagate acquisitions
//! and blocking reach across function boundaries. Everything is
//! name-based and approximate by design: the walker only claims a lock
//! is held when it saw a recognizable acquisition of a *declared* lock
//! (a `Mutex`/`RwLock` struct field, a `Mutex::new` local, or a
//! lock-typed parameter), so false "held" states are rare, and
//! ambiguous method calls fall back to a deny-list-filtered
//! resolve-by-name that errs toward finding hazards.
//!
//! Lock identity is `crate/name` (e.g. `ena-serve/disk`): field names
//! are unique enough within one crate's concurrent core, and the
//! qualified form keeps the workspace lock-order graph readable.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::parser::{parse_fns, FnItem};
use crate::scan::{match_close, CrateSrc, DurabilityDirective, SourceFile, TargetKind};

/// A lock guard live at some program point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Held {
    /// Qualified lock name (`crate/lock`).
    pub lock: String,
    /// Line the guard was acquired on.
    pub line: u32,
}

/// One recognized lock acquisition.
#[derive(Clone, Debug)]
pub struct AcquireSite {
    /// Qualified lock name being acquired.
    pub lock: String,
    /// 1-based line.
    pub line: u32,
    /// Guards already held *before* this acquisition.
    pub held: Vec<Held>,
}

/// How a call site names its target.
#[derive(Clone, Debug)]
pub enum CallTarget {
    /// `self.name(..)`.
    SelfRecv(String),
    /// `Type::name(..)`.
    Path {
        /// Type preceding `::`.
        ty: String,
        /// Method name.
        name: String,
    },
    /// `recv.name(..)`; `hint` is the receiver's struct type when a
    /// field declaration revealed it.
    Method {
        /// Receiver type hint.
        hint: Option<String>,
        /// Method name.
        name: String,
    },
    /// `name(..)`.
    Free(String),
}

impl CallTarget {
    /// The bare callee name, for display.
    pub fn name(&self) -> &str {
        match self {
            CallTarget::SelfRecv(n) | CallTarget::Free(n) => n,
            CallTarget::Path { name, .. } | CallTarget::Method { name, .. } => name,
        }
    }
}

/// One recorded call.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee descriptor.
    pub target: CallTarget,
    /// 1-based line.
    pub line: u32,
    /// Guards held across the call.
    pub held: Vec<Held>,
}

/// One `condvar.wait(guard)` / `wait_timeout` site.
#[derive(Clone, Debug)]
pub struct WaitSite {
    /// 1-based line.
    pub line: u32,
    /// The wait is lexically inside a `loop`/`while` body.
    pub in_loop: bool,
    /// Qualified lock of the guard handed to the wait, when identified.
    pub guard_lock: Option<String>,
    /// Guards held *besides* the one being waited on.
    pub others_held: Vec<Held>,
}

/// One direct blocking operation (I/O, fsync, sleep, `evaluate_*`).
#[derive(Clone, Debug)]
pub struct BlockSite {
    /// Operation name as written.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// Guards held at the operation.
    pub held: Vec<Held>,
}

/// One analyzed function with its event summary.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Owning crate.
    pub crate_name: String,
    /// `(crate index, file index)` into the scanned workspace, so
    /// workspace findings route back through per-file suppression.
    pub file_idx: (usize, usize),
    /// Workspace-relative path, for display.
    pub rel_path: String,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Line of the body's closing brace.
    pub end_line: u32,
    /// The function is a guard-returning lock helper (acquisitions are
    /// attributed to its callers; its own body is not walked).
    pub is_helper: bool,
    /// Recognized acquisitions, in order.
    pub acquires: Vec<AcquireSite>,
    /// Recorded calls, in order.
    pub calls: Vec<CallSite>,
    /// Condvar waits.
    pub waits: Vec<WaitSite>,
    /// Direct blocking operations.
    pub blocking: Vec<BlockSite>,
    /// Durability annotations scoped to this function.
    pub durability: Vec<DurabilityDirective>,
}

impl FnNode {
    /// `Type::name` or `name`, for witness chains.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// What a guard-returning helper acquires when called.
#[derive(Clone, Debug)]
enum HelperKind {
    /// Acquires whichever lock the caller passes (first lock param).
    Param,
    /// Always acquires these qualified locks (field locks of its type).
    Fixed(Vec<String>),
}

/// The workspace semantic model.
#[derive(Debug, Default)]
pub struct Model {
    /// All analyzed functions.
    pub fns: Vec<FnNode>,
    method_index: BTreeMap<(String, String, String), Vec<usize>>,
    free_index: BTreeMap<(String, String), Vec<usize>>,
    name_index: BTreeMap<String, Vec<usize>>,
    impl_name_index: BTreeMap<(String, String), Vec<usize>>,
}

/// Per-crate lock declarations discovered before body walking.
#[derive(Debug, Default)]
struct CrateDecls {
    mutex_fields: BTreeSet<String>,
    rwlock_fields: BTreeSet<String>,
    condvar_fields: BTreeSet<String>,
    /// field name -> idents appearing in its declared type.
    field_types: BTreeMap<String, Vec<String>>,
    helpers: BTreeMap<(Option<String>, String), HelperKind>,
}

/// Call names that are never resolved through the approximate
/// by-name fallback: std collection/iterator/primitive vocabulary that
/// would otherwise alias user methods (`len`, `insert`, `remove`, ...)
/// and flood the call graph with false edges. `append` and `wait` are
/// deliberately *not* here — resolving them is how blocking disk
/// appends and nested condvar waits are traced across crates.
const DENY_METHODS: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "entry",
    "or_insert",
    "or_default",
    "contains",
    "contains_key",
    "extend",
    "drain",
    "clear",
    "map",
    "filter",
    "fold",
    "collect",
    "chain",
    "zip",
    "enumerate",
    "rev",
    "take",
    "skip",
    "find",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "min",
    "max",
    "abs",
    "load",
    "store",
    "swap",
    "send",
    "parse",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "first",
    "last",
    "values",
    "keys",
    "split",
    "join",
    "trim",
    "starts_with",
    "ends_with",
    "ptr_eq",
    "notify_one",
    "notify_all",
    "ok",
    "err",
    "expect",
    "unwrap",
    "then",
    "and_then",
    "or_else",
    "ok_or",
    "ok_or_else",
    "take_while",
    "flat_map",
    "flatten",
    "copied",
    "cloned",
    "retain",
    "resize",
    "truncate",
    "reserve",
    "floor",
    "ceil",
    "round",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "log2",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "sort_by",
    "sort",
    "sort_by_key",
    "binary_search",
    "windows",
    "chunks",
    "replace",
    "chars",
    "bytes",
    "lines",
];

/// Prefix families in the same spirit as [`DENY_METHODS`].
const DENY_PREFIXES: &[&str] = &[
    "is_",
    "as_",
    "to_",
    "into_",
    "from_",
    "wrapping_",
    "saturating_",
    "checked_",
    "overflowing_",
    "rotate_",
    "fetch_",
    "unwrap_",
    "write_fmt",
];

fn deny_method(name: &str) -> bool {
    DENY_METHODS.iter().any(|d| *d == name) || DENY_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Operations that block the calling thread: durability/file I/O,
/// socket setup, channel receives, and sleeps — plus anything named
/// `evaluate*`, the engine's simulation entry points.
const BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "flush",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "remove_file",
    "rename",
    "create_dir_all",
    "open",
    "create",
    "connect",
    "accept",
    "sleep",
    "recv",
    "recv_timeout",
];

fn is_blocking_name(name: &str) -> bool {
    BLOCKING.iter().any(|b| *b == name) || name.starts_with("evaluate")
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "move", "in", "as", "let", "fn",
    "pub", "use", "mod", "impl", "struct", "enum", "trait", "where", "unsafe", "ref", "break",
    "continue", "mut", "const", "static", "type", "dyn", "crate", "super", "Self", "self",
];

impl Model {
    /// Builds the model over every scanned crate. Only `Lib`/`Bin`
    /// files participate; test-gated regions are skipped.
    pub fn build(crates: &[CrateSrc]) -> Model {
        let mut decls: BTreeMap<String, CrateDecls> = BTreeMap::new();
        let mut struct_names: BTreeSet<String> = BTreeSet::new();
        let mut parsed: Vec<(usize, usize, Vec<FnItem>)> = Vec::new();
        for (ci, krate) in crates.iter().enumerate() {
            let entry = decls.entry(krate.name.clone()).or_default();
            for (fi, file) in krate.files.iter().enumerate() {
                if !analyzable(file) {
                    continue;
                }
                discover_decls(&file.code, entry, &mut struct_names);
                parsed.push((ci, fi, parse_fns(&file.code)));
            }
        }
        // Helper registry: guard-returning fns, classified before the
        // main walk so callers can attribute their acquisitions.
        for (ci, fi, fns) in &parsed {
            let Some(krate) = crates.get(*ci) else {
                continue;
            };
            let Some(file) = krate.files.get(*fi) else {
                continue;
            };
            let Some(entry) = decls.get_mut(&krate.name) else {
                continue;
            };
            for f in fns {
                if !f.returns_guard || file.test_lines.contains(f.line) {
                    continue;
                }
                let kind = if f.params.iter().any(|p| p.is_lock) {
                    HelperKind::Param
                } else {
                    let locks = helper_fixed_locks(&file.code, f, entry, &krate.name);
                    HelperKind::Fixed(locks)
                };
                entry
                    .helpers
                    .insert((f.impl_type.clone(), f.name.clone()), kind);
            }
        }

        let mut model = Model::default();
        for (ci, fi, fns) in &parsed {
            let Some(krate) = crates.get(*ci) else {
                continue;
            };
            let Some(file) = krate.files.get(*fi) else {
                continue;
            };
            let Some(crate_decls) = decls.get(&krate.name) else {
                continue;
            };
            for f in fns {
                if file.test_lines.contains(f.line) {
                    continue;
                }
                let is_helper = crate_decls
                    .helpers
                    .contains_key(&(f.impl_type.clone(), f.name.clone()));
                let mut node = FnNode {
                    crate_name: krate.name.clone(),
                    file_idx: (*ci, *fi),
                    rel_path: file.rel_path.clone(),
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    line: f.line,
                    end_line: f.end_line,
                    is_helper,
                    acquires: Vec::new(),
                    calls: Vec::new(),
                    waits: Vec::new(),
                    blocking: Vec::new(),
                    durability: file
                        .durability
                        .iter()
                        .filter(|d| d.line + 2 >= f.line && d.line <= f.end_line)
                        .cloned()
                        .collect(),
                };
                if !is_helper {
                    if let Some((open, close)) = f.body {
                        Walker::new(&file.code, f, crate_decls, &krate.name, &struct_names)
                            .walk(open, close, &mut node);
                    }
                }
                model.fns.push(node);
            }
        }
        model.build_indexes();
        model
    }

    fn build_indexes(&mut self) {
        for (id, f) in self.fns.iter().enumerate() {
            if let Some(t) = &f.impl_type {
                self.method_index
                    .entry((f.crate_name.clone(), t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                self.impl_name_index
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            } else {
                self.free_index
                    .entry((f.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            self.name_index.entry(f.name.clone()).or_default().push(id);
        }
    }

    /// Resolves a call site to candidate callees (never the caller
    /// itself — self-recursion cannot create a *new* lock hazard).
    pub fn resolve(&self, caller: usize, target: &CallTarget) -> Vec<usize> {
        let caller_fn = self.fns.get(caller);
        let crate_name = caller_fn.map(|f| f.crate_name.as_str()).unwrap_or("");
        let mut out = match target {
            CallTarget::SelfRecv(name) => {
                let ty = caller_fn
                    .and_then(|f| f.impl_type.clone())
                    .unwrap_or_default();
                let same_impl = self
                    .method_index
                    .get(&(crate_name.to_string(), ty, name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if same_impl.is_empty() {
                    self.by_name_in_crate(crate_name, name)
                } else {
                    same_impl
                }
            }
            CallTarget::Path { ty, name } => self
                .impl_name_index
                .get(&(ty.clone(), name.clone()))
                .cloned()
                .unwrap_or_default(),
            CallTarget::Method {
                hint: Some(ty),
                name,
            } => {
                let hinted = self
                    .impl_name_index
                    .get(&(ty.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if hinted.is_empty() {
                    self.name_index.get(name).cloned().unwrap_or_default()
                } else {
                    hinted
                }
            }
            CallTarget::Method { hint: None, name } => {
                self.name_index.get(name).cloned().unwrap_or_default()
            }
            CallTarget::Free(name) => {
                let free = self
                    .free_index
                    .get(&(crate_name.to_string(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if free.is_empty() {
                    self.name_index.get(name).cloned().unwrap_or_default()
                } else {
                    free
                }
            }
        };
        out.retain(|id| *id != caller);
        out
    }

    fn by_name_in_crate(&self, crate_name: &str, name: &str) -> Vec<usize> {
        self.name_index
            .get(name)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|id| {
                        self.fns
                            .get(*id)
                            .is_some_and(|f| f.crate_name == crate_name)
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

fn analyzable(file: &SourceFile) -> bool {
    matches!(file.target, TargetKind::Lib | TargetKind::Bin)
        && !file.exempt_test
        && !file.exempt_timing
}

/// Scans struct bodies and statics for lock/condvar declarations and
/// field type hints.
fn discover_decls(code: &[Tok], decls: &mut CrateDecls, struct_names: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < code.len() {
        if code.get(i).is_some_and(|t| t.is_ident("struct")) {
            if let Some(name) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                struct_names.insert(name.text.clone());
                // Find the body `{` (tuple/unit structs have none).
                let mut j = i + 2;
                while let Some(t) = code.get(j) {
                    if t.is_punct('{') {
                        if let Some(close) = match_close(code, j, '{', '}') {
                            discover_fields(code.get(j + 1..close).unwrap_or(&[]), decls);
                            i = close;
                        }
                        break;
                    }
                    if t.is_punct(';') || t.is_punct('(') {
                        break;
                    }
                    j += 1;
                }
            }
        } else if code.get(i).is_some_and(|t| t.is_ident("static"))
            || code.get(i).is_some_and(|t| t.is_ident("enum"))
        {
            if code.get(i).is_some_and(|t| t.is_ident("enum")) {
                if let Some(name) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    struct_names.insert(name.text.clone());
                }
            } else if let Some(name) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                // `static NAME: Mutex<..>` declares a crate-wide lock.
                let mut ty = Vec::new();
                let mut j = i + 3;
                while let Some(t) = code.get(j) {
                    if t.is_punct('=') || t.is_punct(';') {
                        break;
                    }
                    ty.push(t.clone());
                    j += 1;
                }
                classify_field(&name.text, &ty, decls);
            }
        }
        i += 1;
    }
}

/// Parses `name: Type` fields at the top level of a struct body.
fn discover_fields(body: &[Tok], decls: &mut CrateDecls) {
    let mut i = 0;
    while i < body.len() {
        // Field name is the ident immediately before a top-level `:`.
        let is_field = body.get(i).is_some_and(|t| t.kind == TokKind::Ident)
            && body.get(i + 1).is_some_and(|t| t.is_punct(':'));
        if !is_field {
            i += 1;
            continue;
        }
        let name = body.get(i).map(|t| t.text.clone()).unwrap_or_default();
        // Type runs to the next comma at angle/paren depth 0.
        let mut ty = Vec::new();
        let mut j = i + 2;
        let mut depth = 0i32;
        while let Some(t) = body.get(j) {
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                break;
            }
            ty.push(t.clone());
            j += 1;
        }
        classify_field(&name, &ty, decls);
        i = j + 1;
    }
}

fn classify_field(name: &str, ty: &[Tok], decls: &mut CrateDecls) {
    let has = |ident: &str| ty.iter().any(|t| t.is_ident(ident));
    if has("Mutex") {
        decls.mutex_fields.insert(name.to_string());
    } else if has("RwLock") {
        decls.rwlock_fields.insert(name.to_string());
    } else if has("Condvar") {
        decls.condvar_fields.insert(name.to_string());
    }
    // Lock fields keep their type idents too: a method called through a
    // guard on `disk: Mutex<DiskCache<..>>` should hint `DiskCache`.
    let idents = ty
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect();
    decls.field_types.insert(name.to_string(), idents);
}

/// Which declared field locks a guard-returning method acquires
/// directly (`self.FIELD.lock()` / `.read()` / `.write()` in its body).
fn helper_fixed_locks(
    code: &[Tok],
    f: &FnItem,
    decls: &CrateDecls,
    crate_name: &str,
) -> Vec<String> {
    let Some((open, close)) = f.body else {
        return Vec::new();
    };
    let body = code.get(open + 1..close).unwrap_or(&[]);
    let mut out = Vec::new();
    for w in 0..body.len() {
        let is_acq = body.get(w).is_some_and(|t| t.is_punct('.'))
            && body
                .get(w + 1)
                .is_some_and(|t| t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
            && body.get(w + 2).is_some_and(|t| t.is_punct('('));
        if !is_acq {
            continue;
        }
        if let Some(recv) = body.get(w.wrapping_sub(1)) {
            let known =
                decls.mutex_fields.contains(&recv.text) || decls.rwlock_fields.contains(&recv.text);
            if recv.kind == TokKind::Ident && known {
                let qualified = format!("{crate_name}/{}", recv.text);
                if !out.contains(&qualified) {
                    out.push(qualified);
                }
            }
        }
    }
    out
}

/// A live guard during the body walk.
struct Guard {
    lock: String,
    var: Option<String>,
    depth: usize,
    temp: bool,
    line: u32,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum ScopeKind {
    Loop,
    Other,
}

/// The per-function body walker.
struct Walker<'a> {
    code: &'a [Tok],
    decls: &'a CrateDecls,
    crate_name: &'a str,
    struct_names: &'a BTreeSet<String>,
    impl_type: Option<String>,
    local_locks: BTreeSet<String>,
    local_condvars: BTreeSet<String>,
    lock_params: BTreeSet<String>,
    guards: Vec<Guard>,
    scopes: Vec<ScopeKind>,
    /// `(alias var, lock name, depth)` from `for`/closure bindings over
    /// lock collections.
    aliases: Vec<(String, String, usize)>,
    depth: usize,
    stmt_start: usize,
}

impl<'a> Walker<'a> {
    fn new(
        code: &'a [Tok],
        f: &FnItem,
        decls: &'a CrateDecls,
        crate_name: &'a str,
        struct_names: &'a BTreeSet<String>,
    ) -> Walker<'a> {
        let lock_params = f
            .params
            .iter()
            .filter(|p| p.is_lock)
            .map(|p| p.name.clone())
            .collect();
        Walker {
            code,
            decls,
            crate_name,
            struct_names,
            impl_type: f.impl_type.clone(),
            local_locks: BTreeSet::new(),
            local_condvars: BTreeSet::new(),
            lock_params,
            guards: Vec::new(),
            scopes: Vec::new(),
            aliases: Vec::new(),
            depth: 0,
            stmt_start: 0,
        }
    }

    fn held(&self) -> Vec<Held> {
        self.guards
            .iter()
            .map(|g| Held {
                lock: g.lock.clone(),
                line: g.line,
            })
            .collect()
    }

    /// True when `name` is a lock the walker can attribute: a declared
    /// field, a `Mutex::new` local, a lock param, or a loop alias.
    fn known_lock(&self, name: &str) -> Option<String> {
        if let Some((_, lock, _)) = self.aliases.iter().rev().find(|(v, _, _)| v == name) {
            // Aliases store the already-qualified name.
            return Some(lock.clone());
        }
        let declared = self.decls.mutex_fields.contains(name)
            || self.decls.rwlock_fields.contains(name)
            || self.local_locks.contains(name)
            || self.lock_params.contains(name);
        declared.then(|| format!("{}/{}", self.crate_name, name))
    }

    fn is_condvar(&self, name: &str) -> bool {
        self.decls.condvar_fields.contains(name) || self.local_condvars.contains(name)
    }

    /// Locks acquired by the guard-helper method `name` on `impl_type`
    /// (`self.lock()` / `field.lock()` where the field's type has a
    /// fixed helper).
    fn helper_locks(&self, impl_type: Option<String>, name: &str) -> Vec<String> {
        match self.decls.helpers.get(&(impl_type, name.to_string())) {
            Some(HelperKind::Fixed(locks)) => locks.clone(),
            _ => Vec::new(),
        }
    }

    /// Registers `Mutex::new`/`RwLock::new`/`Condvar::new` locals by
    /// walking back to their `let` binding, before the event walk.
    fn prepass(&mut self, open: usize, close: usize) {
        let mut i = open + 1;
        while i + 3 < close {
            let is_ctor = self.code.get(i).is_some_and(|t| {
                t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("Condvar")
            }) && self.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && self.code.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && self.code.get(i + 3).is_some_and(|t| t.is_ident("new"));
            if is_ctor {
                if let Some(name) = let_binding_before(self.code, i, open) {
                    if self.code.get(i).is_some_and(|t| t.is_ident("Condvar")) {
                        self.local_condvars.insert(name);
                    } else {
                        self.local_locks.insert(name);
                    }
                }
            }
            i += 1;
        }
    }

    /// Trailing ident of the receiver chain ending just before the `.`
    /// at `dot`: `self.shards[k].` → `shards`, `self.` → `self`.
    /// The bool is true when the receiver is exactly `self`.
    fn trailing_ident(&self, dot: usize) -> Option<(String, bool)> {
        let mut j = dot;
        // Skip one trailing index/call group backwards.
        while j > 0 {
            let prev = self.code.get(j - 1)?;
            if prev.is_punct(']') {
                j = match_open(self.code, j - 1, '[', ']')?;
            } else if prev.is_punct(')') {
                j = match_open(self.code, j - 1, '(', ')')?;
            } else {
                break;
            }
        }
        let prev = self.code.get(j.checked_sub(1)?)?;
        if prev.kind != TokKind::Ident {
            return None;
        }
        let direct_self = prev.text == "self"
            && !self
                .code
                .get(j.wrapping_sub(2))
                .is_some_and(|t| t.is_punct('.'));
        Some((prev.text.clone(), direct_self))
    }

    /// First token of the postfix chain the `.` at `dot` belongs to.
    fn chain_start(&self, dot: usize) -> usize {
        let mut j = dot;
        while j > 0 {
            let Some(prev) = self.code.get(j - 1) else {
                return j;
            };
            if prev.kind == TokKind::Ident || prev.is_punct('.') {
                j -= 1;
            } else if prev.is_punct(']') {
                let Some(open) = match_open(self.code, j - 1, '[', ']') else {
                    return j;
                };
                j = open;
            } else if prev.is_punct(')') {
                let Some(open) = match_open(self.code, j - 1, '(', ')') else {
                    return j;
                };
                j = open;
            } else {
                return j;
            }
        }
        j
    }

    /// Receiver type hint for a field access: the first ident of the
    /// field's declared type that names a workspace struct.
    fn field_hint(&self, field: &str) -> Option<String> {
        self.decls
            .field_types
            .get(field)?
            .iter()
            .find(|id| self.struct_names.contains(*id))
            .cloned()
    }

    /// Records the acquisition of `locks` whose call parens open at
    /// `open_paren`; `expr_start` is the head of the acquiring
    /// expression (for `let`-binding classification). Returns the index
    /// to resume walking at (past the argument list — helper arguments
    /// were already consumed to name the lock).
    fn acquire(
        &mut self,
        locks: Vec<String>,
        expr_start: usize,
        open_paren: usize,
        node: &mut FnNode,
    ) -> usize {
        let cp = match_close(self.code, open_paren, '(', ')').unwrap_or(open_paren);
        let line = self.code.get(open_paren).map_or(1, |t| t.line);
        let var = self.binding_of(expr_start, cp);
        for lock in locks {
            node.acquires.push(AcquireSite {
                lock: lock.clone(),
                line,
                held: self.held(),
            });
            self.guards.push(Guard {
                lock,
                var: var.clone(),
                depth: self.depth,
                temp: var.is_none(),
                line,
            });
        }
        cp + 1
    }

    /// `Some(name)` when the statement is `let [mut] name = <acquire
    /// expr>` followed only by `.unwrap()`/`.expect(..)`/
    /// `.unwrap_or_else(..)` and `;` — the guard outlives the
    /// statement. Anything else (including a leading `*` deref) makes
    /// the guard a temporary.
    fn binding_of(&self, expr_start: usize, close_paren: usize) -> Option<String> {
        if self
            .code
            .get(expr_start.wrapping_sub(1))
            .is_some_and(|t| t.is_punct('*'))
        {
            return None;
        }
        let mut k = self.stmt_start;
        if !self.code.get(k).is_some_and(|t| t.is_ident("let")) {
            return None;
        }
        k += 1;
        if self.code.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let name = self.code.get(k).filter(|t| t.kind == TokKind::Ident)?;
        if !self.code.get(k + 1).is_some_and(|t| t.is_punct('=')) || k + 2 != expr_start {
            return None;
        }
        // Post-call chain must only recover from poisoning.
        let mut m = close_paren + 1;
        loop {
            let chained = self.code.get(m).is_some_and(|t| t.is_punct('.'))
                && self.code.get(m + 1).is_some_and(|t| {
                    t.is_ident("unwrap") || t.is_ident("expect") || t.is_ident("unwrap_or_else")
                })
                && self.code.get(m + 2).is_some_and(|t| t.is_punct('('));
            if !chained {
                break;
            }
            m = match_close(self.code, m + 2, '(', ')')? + 1;
        }
        if self.code.get(m).is_some_and(|t| t.is_punct(';')) {
            Some(name.text.clone())
        } else {
            None
        }
    }

    fn kill_scope(&mut self, new_depth: usize) {
        self.guards
            .retain(|g| g.depth <= new_depth && !(g.temp && g.depth == new_depth));
        self.aliases.retain(|(_, _, d)| *d <= new_depth);
    }

    /// The main event walk over the body token range.
    fn walk(mut self, open: usize, close: usize, node: &mut FnNode) {
        self.prepass(open, close);
        let mut i = open + 1;
        self.stmt_start = i;
        while i < close {
            let Some(t) = self.code.get(i) else { break };
            if t.is_punct('{') {
                let header = self.code.get(self.stmt_start..i).unwrap_or(&[]);
                let first = header.iter().find(|h| h.kind == TokKind::Ident);
                let kind = match first.map(|h| h.text.as_str()) {
                    Some("loop") | Some("while") => ScopeKind::Loop,
                    _ => ScopeKind::Other,
                };
                if first.is_some_and(|h| h.text == "for") {
                    self.alias_for_header(header);
                }
                self.scopes.push(kind);
                self.depth += 1;
                self.stmt_start = i + 1;
                i += 1;
                continue;
            }
            if t.is_punct('}') {
                let new_depth = self.depth.saturating_sub(1);
                self.kill_scope(new_depth);
                self.depth = new_depth;
                self.scopes.pop();
                self.stmt_start = i + 1;
                i += 1;
                continue;
            }
            if t.is_punct(';') {
                let d = self.depth;
                self.guards.retain(|g| !(g.temp && g.depth == d));
                self.stmt_start = i + 1;
                i += 1;
                continue;
            }
            if t.is_punct('|') {
                self.alias_closure(i);
                i += 1;
                continue;
            }
            if t.is_ident("fn")
                && self
                    .code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
            {
                i = skip_nested_fn(self.code, i, close);
                self.stmt_start = i;
                continue;
            }
            if t.is_ident("drop") && self.code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                if let Some(name) = self.code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    if self.code.get(i + 3).is_some_and(|n| n.is_punct(')')) {
                        let name = name.text.clone();
                        self.guards.retain(|g| g.var.as_deref() != Some(&name));
                        i += 4;
                        continue;
                    }
                }
                i += 1;
                continue;
            }
            if t.is_punct('.')
                && self
                    .code
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Ident)
                && self.code.get(i + 2).is_some_and(|n| n.is_punct('('))
            {
                i = self.method_site(i, node);
                continue;
            }
            if t.kind == TokKind::Ident && self.code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                i = self.call_site(i, node);
                continue;
            }
            i += 1;
        }
    }

    /// `for NAME in <expr mentioning a known lock>` aliases NAME to
    /// that lock for the loop body.
    fn alias_for_header(&mut self, header: &[Tok]) {
        let Some(name) = header.get(1).filter(|t| t.kind == TokKind::Ident) else {
            return;
        };
        let lock = header
            .iter()
            .skip(2)
            .filter(|t| t.kind == TokKind::Ident)
            .find_map(|t| self.known_lock(&t.text));
        if let Some(lock) = lock {
            self.aliases.push((name.text.clone(), lock, self.depth + 1));
        }
    }

    /// `|x|` closing over a statement that mentions a known lock
    /// aliases the single closure param to that lock.
    fn alias_closure(&mut self, bar: usize) {
        let single = self
            .code
            .get(bar + 1)
            .is_some_and(|t| t.kind == TokKind::Ident)
            && self.code.get(bar + 2).is_some_and(|t| t.is_punct('|'));
        if !single {
            return;
        }
        let Some(name) = self.code.get(bar + 1) else {
            return;
        };
        let stmt = self.code.get(self.stmt_start..bar).unwrap_or(&[]);
        let lock = stmt
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .find_map(|t| self.known_lock(&t.text));
        if let Some(lock) = lock {
            self.aliases.push((name.text.clone(), lock, self.depth));
        }
    }

    /// Handles `.name(` at dot index `i`; returns the next walk index.
    fn method_site(&mut self, i: usize, node: &mut FnNode) -> usize {
        let name = self
            .code
            .get(i + 1)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        let line = self.code.get(i + 1).map_or(1, |t| t.line);
        let open_paren = i + 2;
        let recv = self.trailing_ident(i);
        if name == "lock" {
            let locks = match &recv {
                Some((_, true)) => self.helper_locks(self.impl_type.clone(), "lock"),
                Some((r, false)) => match self.known_lock(r) {
                    Some(l) => vec![l],
                    None => self
                        .field_hint(r)
                        .map(|ty| self.helper_locks(Some(ty), "lock"))
                        .unwrap_or_default(),
                },
                None => Vec::new(),
            };
            if !locks.is_empty() {
                let start = self.chain_start(i);
                return self.acquire(locks, start, open_paren, node);
            }
            return open_paren;
        }
        if name == "read" || name == "write" {
            if let Some((r, false)) = &recv {
                let is_rw = self.decls.rwlock_fields.contains(r) || self.local_locks.contains(r);
                if is_rw {
                    let lock = format!("{}/{r}", self.crate_name);
                    let start = self.chain_start(i);
                    return self.acquire(vec![lock], start, open_paren, node);
                }
            }
            return open_paren;
        }
        if name == "wait" || name == "wait_timeout" || name == "wait_while" {
            if let Some((r, false)) = &recv {
                if self.is_condvar(r) {
                    let cp = match_close(self.code, open_paren, '(', ')').unwrap_or(open_paren);
                    let arg_guard = self
                        .code
                        .get(open_paren + 1..cp)
                        .unwrap_or(&[])
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .find_map(|t| {
                            self.guards
                                .iter()
                                .find(|g| g.var.as_deref() == Some(&t.text))
                                .map(|g| g.lock.clone())
                        });
                    let others = self
                        .guards
                        .iter()
                        .filter(|g| Some(&g.lock) != arg_guard.as_ref())
                        .map(|g| Held {
                            lock: g.lock.clone(),
                            line: g.line,
                        })
                        .collect();
                    node.waits.push(WaitSite {
                        line,
                        in_loop: self.scopes.contains(&ScopeKind::Loop),
                        guard_lock: arg_guard,
                        others_held: others,
                    });
                    return cp + 1;
                }
            }
        }
        if is_blocking_name(&name) {
            node.blocking.push(BlockSite {
                what: name,
                line,
                held: self.held(),
            });
            return open_paren + 1;
        }
        if deny_method(&name) || name == "unwrap_or_else" {
            return open_paren + 1;
        }
        let target = match recv {
            Some((_, true)) => CallTarget::SelfRecv(name),
            Some((r, false)) => {
                // A method on a live guard variable is a method on the
                // locked value: hint with the lock field's declared type
                // so `cache.snapshot(..)` (guard on `disk`) resolves to
                // `DiskCache::snapshot`, not every `snapshot` by name.
                let hint = self.field_hint(&r).or_else(|| {
                    self.guards
                        .iter()
                        .rev()
                        .find(|g| g.var.as_deref() == Some(r.as_str()))
                        .and_then(|g| g.lock.rsplit('/').next().map(str::to_string))
                        .and_then(|field| self.field_hint(&field))
                });
                CallTarget::Method { hint, name }
            }
            None => CallTarget::Method { hint: None, name },
        };
        node.calls.push(CallSite {
            target,
            line,
            held: self.held(),
        });
        open_paren + 1
    }

    /// Handles free and path calls `name(` at ident index `i`.
    fn call_site(&mut self, i: usize, node: &mut FnNode) -> usize {
        let Some(tok) = self.code.get(i) else {
            return i + 1;
        };
        let name = tok.text.clone();
        let line = tok.line;
        let open_paren = i + 1;
        let prev = self.code.get(i.wrapping_sub(1));
        if i > 0 && prev.is_some_and(|p| p.is_punct('.') || p.kind == TokKind::Ident) {
            return i + 1; // method call (handled at the dot) or decl
        }
        let is_path = prev.is_some_and(|p| p.is_punct(':'))
            && self
                .code
                .get(i.wrapping_sub(2))
                .is_some_and(|p| p.is_punct(':'));
        if is_path {
            let ty = self
                .code
                .get(i.wrapping_sub(3))
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone());
            let ctor = name == "new"
                && ty
                    .as_deref()
                    .is_some_and(|t| matches!(t, "Mutex" | "RwLock" | "Condvar"));
            if ctor {
                return open_paren + 1;
            }
            if is_blocking_name(&name) {
                node.blocking.push(BlockSite {
                    what: name,
                    line,
                    held: self.held(),
                });
                return open_paren + 1;
            }
            if deny_method(&name) {
                return open_paren + 1;
            }
            if let Some(ty) = ty {
                node.calls.push(CallSite {
                    target: CallTarget::Path { ty, name },
                    line,
                    held: self.held(),
                });
            }
            return open_paren + 1;
        }
        if KEYWORDS.iter().any(|k| *k == name)
            || name.chars().next().is_some_and(|c| c.is_uppercase())
        {
            return i + 1;
        }
        if let Some(kind) = self.decls.helpers.get(&(None, name.clone())) {
            let locks = match kind {
                HelperKind::Fixed(locks) => locks.clone(),
                HelperKind::Param => {
                    let cp = match_close(self.code, open_paren, '(', ')').unwrap_or(open_paren);
                    let args = self.code.get(open_paren + 1..cp).unwrap_or(&[]);
                    let known = args
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .filter_map(|t| self.known_lock(&t.text))
                        .last();
                    let fallback = args
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .last()
                        .map(|t| format!("{}/{}", self.crate_name, t.text));
                    known.or(fallback).map(|l| vec![l]).unwrap_or_default()
                }
            };
            if !locks.is_empty() {
                return self.acquire(locks, i, open_paren, node);
            }
            return open_paren + 1;
        }
        if is_blocking_name(&name) {
            node.blocking.push(BlockSite {
                what: name,
                line,
                held: self.held(),
            });
            return open_paren + 1;
        }
        if deny_method(&name) {
            return open_paren + 1;
        }
        node.calls.push(CallSite {
            target: CallTarget::Free(name),
            line,
            held: self.held(),
        });
        open_paren + 1
    }
}

/// Nearest `let [mut] NAME` binding looking backwards from `idx`
/// within the same statement.
fn let_binding_before(code: &[Tok], idx: usize, floor: usize) -> Option<String> {
    let mut j = idx;
    while j > floor {
        let t = code.get(j - 1)?;
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            let mut k = j;
            if code.get(k).is_some_and(|n| n.is_ident("mut")) {
                k += 1;
            }
            return code
                .get(k)
                .filter(|n| n.kind == TokKind::Ident)
                .map(|n| n.text.clone());
        }
        j -= 1;
    }
    None
}

/// Index of the punct opening the bracket closed at `close_idx`.
fn match_open(code: &[Tok], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = close_idx;
    loop {
        let t = code.get(j)?;
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j = j.checked_sub(1)?;
    }
}

/// Skips a nested `fn` item starting at `i`, returning the index past
/// its body (or past the `fn` token when no body is found).
fn skip_nested_fn(code: &[Tok], i: usize, limit: usize) -> usize {
    let mut j = i;
    let mut depth = 0i32;
    while j < limit {
        let Some(t) = code.get(j) else { break };
        if t.kind == TokKind::Punct {
            match t.text.chars().next() {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    return match_close(code, j, '{', '}').map_or(j + 1, |c| c + 1);
                }
                Some(';') if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    i + 1
}

/// A transitively-reached event with its call chain.
#[derive(Clone, Debug)]
pub struct Witness {
    /// Operation or lock name reached.
    pub what: String,
    /// Call chain of function display names, caller first.
    pub path: Vec<String>,
    /// File of the final (deepest) site.
    pub file: String,
    /// Line of the final site.
    pub line: u32,
}

/// Resolved call edges plus fixed-point transitive facts.
#[derive(Debug, Default)]
pub struct Resolved {
    /// `edges[fn][call]` = candidate callee fn ids.
    pub edges: Vec<Vec<Vec<usize>>>,
    /// Per-fn: qualified locks acquired on some call path, with a
    /// witness chain each.
    pub acquires: Vec<BTreeMap<String, Witness>>,
    /// Per-fn: a blocking operation (or condvar wait) reached on some
    /// call path.
    pub blocking: Vec<Option<Witness>>,
}

/// One lock-order edge `held -> acquired` with its earliest witness.
#[derive(Clone, Debug)]
pub struct EdgeInfo {
    /// File of the witnessing acquisition/call.
    pub file: String,
    /// Line of the witnessing site.
    pub line: u32,
    /// Function chain that realizes the edge.
    pub via: String,
}

impl Model {
    /// Resolves every call site and computes transitive acquisition and
    /// blocking reach to a fixed point.
    pub fn analyze(&self) -> Resolved {
        let mut r = Resolved {
            edges: self
                .fns
                .iter()
                .enumerate()
                .map(|(id, f)| {
                    f.calls
                        .iter()
                        .map(|c| self.resolve(id, &c.target))
                        .collect()
                })
                .collect(),
            acquires: self
                .fns
                .iter()
                .map(|f| {
                    let mut m = BTreeMap::new();
                    for a in &f.acquires {
                        m.entry(a.lock.clone()).or_insert_with(|| Witness {
                            what: a.lock.clone(),
                            path: vec![f.display()],
                            file: f.rel_path.clone(),
                            line: a.line,
                        });
                    }
                    m
                })
                .collect(),
            blocking: self
                .fns
                .iter()
                .map(|f| {
                    let direct = f.blocking.first().map(|b| Witness {
                        what: b.what.clone(),
                        path: vec![f.display()],
                        file: f.rel_path.clone(),
                        line: b.line,
                    });
                    direct.or_else(|| {
                        f.waits.first().map(|w| Witness {
                            what: "condvar wait".to_string(),
                            path: vec![f.display()],
                            file: f.rel_path.clone(),
                            line: w.line,
                        })
                    })
                })
                .collect(),
        };
        // Fixed point: propagate callee facts to callers. Path lengths
        // only grow via first-insertion, so this terminates.
        loop {
            let mut changed = false;
            for id in 0..self.fns.len() {
                let Some(f) = self.fns.get(id) else { continue };
                let display = f.display();
                let mut new_acq: Vec<(String, Witness)> = Vec::new();
                let mut new_block: Option<Witness> = None;
                for (ci, _call) in f.calls.iter().enumerate() {
                    let callees = r
                        .edges
                        .get(id)
                        .and_then(|e| e.get(ci))
                        .cloned()
                        .unwrap_or_default();
                    for callee in callees {
                        if let Some(cm) = r.acquires.get(callee) {
                            for (lock, w) in cm {
                                let have = r.acquires.get(id).is_some_and(|m| m.contains_key(lock))
                                    || new_acq.iter().any(|(l, _)| l == lock);
                                if !have {
                                    let mut path = vec![display.clone()];
                                    path.extend(w.path.iter().cloned());
                                    new_acq.push((
                                        lock.clone(),
                                        Witness {
                                            what: w.what.clone(),
                                            path,
                                            file: w.file.clone(),
                                            line: w.line,
                                        },
                                    ));
                                }
                            }
                        }
                        let blocked = r.blocking.get(id).map(Option::is_some).unwrap_or(false);
                        if !blocked && new_block.is_none() {
                            if let Some(Some(w)) = r.blocking.get(callee) {
                                let mut path = vec![display.clone()];
                                path.extend(w.path.iter().cloned());
                                new_block = Some(Witness {
                                    what: w.what.clone(),
                                    path,
                                    file: w.file.clone(),
                                    line: w.line,
                                });
                            }
                        }
                    }
                }
                if !new_acq.is_empty() {
                    if let Some(m) = r.acquires.get_mut(id) {
                        for (lock, w) in new_acq {
                            m.insert(lock, w);
                            changed = true;
                        }
                    }
                }
                if let Some(w) = new_block {
                    if let Some(slot) = r.blocking.get_mut(id) {
                        *slot = Some(w);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        r
    }

    /// The workspace lock-order graph: an edge `h -> l` means lock `l`
    /// is acquired (directly or via a call chain) while `h` is held.
    /// Each edge keeps its earliest `(file, line)` witness.
    pub fn lock_graph(&self, r: &Resolved) -> BTreeMap<(String, String), EdgeInfo> {
        let mut edges: BTreeMap<(String, String), EdgeInfo> = BTreeMap::new();
        let mut add = |from: &str, to: &str, info: EdgeInfo| {
            if from == to {
                return; // self-edges are double-lock's business
            }
            let key = (from.to_string(), to.to_string());
            let replace = edges
                .get(&key)
                .is_none_or(|e| (info.file.as_str(), info.line) < (e.file.as_str(), e.line));
            if replace {
                edges.insert(key, info);
            }
        };
        for (id, f) in self.fns.iter().enumerate() {
            for a in &f.acquires {
                for h in &a.held {
                    add(
                        &h.lock,
                        &a.lock,
                        EdgeInfo {
                            file: f.rel_path.clone(),
                            line: a.line,
                            via: f.display(),
                        },
                    );
                }
            }
            for (ci, c) in f.calls.iter().enumerate() {
                if c.held.is_empty() {
                    continue;
                }
                let callees = r
                    .edges
                    .get(id)
                    .and_then(|e| e.get(ci))
                    .cloned()
                    .unwrap_or_default();
                for callee in callees {
                    let Some(cm) = r.acquires.get(callee) else {
                        continue;
                    };
                    for (lock, w) in cm {
                        for h in &c.held {
                            add(
                                &h.lock,
                                lock,
                                EdgeInfo {
                                    file: f.rel_path.clone(),
                                    line: c.line,
                                    via: format!("{} -> {}", f.display(), w.path.join(" -> ")),
                                },
                            );
                        }
                    }
                }
            }
        }
        edges
    }

    /// Deterministic rendering of the lock graph for
    /// `artifacts/lock_graph.txt`.
    pub fn render_lock_graph(&self, r: &Resolved) -> String {
        let mut sites: BTreeMap<String, usize> = BTreeMap::new();
        for f in &self.fns {
            for a in &f.acquires {
                *sites.entry(a.lock.clone()).or_insert(0) += 1;
            }
        }
        let edges = self.lock_graph(r);
        let mut out = String::from("# ena-lint workspace lock-acquisition graph\n");
        out.push_str("# lock <crate>/<name> sites=<direct acquire sites>\n");
        for (lock, n) in &sites {
            out.push_str(&format!("lock {lock} sites={n}\n"));
        }
        out.push_str("# edge <held> -> <acquired> at <witness>\n");
        if edges.is_empty() {
            out.push_str("edges: none\n");
        }
        for ((from, to), info) in &edges {
            out.push_str(&format!(
                "edge {from} -> {to} at {}:{} via {}\n",
                info.file, info.line, info.via
            ));
        }
        out
    }
}

/// A cycle in the lock-order graph: the node sequence (first node
/// repeated at the end) and the witnessed edges along it.
#[derive(Clone, Debug)]
pub struct Cycle {
    /// Nodes in cycle order, closed (last == first).
    pub nodes: Vec<String>,
    /// Edge witnesses for each consecutive node pair.
    pub edges: Vec<((String, String), EdgeInfo)>,
}

/// Finds every elementary lock-order cycle reachable from each graph
/// node via shortest-path search, deduplicated by node set. Reported
/// deterministically (sorted by the cycle's smallest node).
pub fn find_cycles(graph: &BTreeMap<(String, String), EdgeInfo>) -> Vec<Cycle> {
    let mut succ: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in graph.keys() {
        succ.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out = Vec::new();
    for start in succ.keys().copied().collect::<Vec<_>>() {
        // BFS from each successor of `start` back to `start`.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: Vec<&str> = Vec::new();
        for s in succ.get(start).cloned().unwrap_or_default() {
            if !parent.contains_key(s) {
                parent.insert(s, start);
                queue.push(s);
            }
        }
        let mut qi = 0;
        let mut found = None;
        while let Some(&node) = queue.get(qi) {
            qi += 1;
            if node == start {
                found = Some(node);
                break;
            }
            for nxt in succ.get(node).cloned().unwrap_or_default() {
                if !parent.contains_key(nxt) {
                    parent.insert(nxt, node);
                    queue.push(nxt);
                }
            }
        }
        if found.is_none() {
            continue;
        }
        // Reconstruct start -> ... -> start.
        let mut rev = vec![start.to_string()];
        let mut cur = *parent.get(start).unwrap_or(&start);
        while cur != start {
            rev.push(cur.to_string());
            cur = parent.get(cur).copied().unwrap_or(start);
        }
        rev.push(start.to_string());
        rev.reverse();
        let mut set: Vec<String> = rev.iter().skip(1).cloned().collect();
        set.sort();
        set.dedup();
        if !seen_sets.insert(set) {
            continue;
        }
        let mut edges = Vec::new();
        for pair in rev.windows(2) {
            if let (Some(a), Some(b)) = (pair.first(), pair.get(1)) {
                let key = (a.clone(), b.clone());
                if let Some(info) = graph.get(&key) {
                    edges.push((key, info.clone()));
                }
            }
        }
        out.push(Cycle { nodes: rev, edges });
    }
    out.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(src: &str) -> Model {
        let file = SourceFile::from_source("c", "src/lib.rs", "src/lib.rs", src);
        Model::build(&[CrateSrc {
            name: "c".to_string(),
            files: vec![file],
        }])
    }

    fn node<'m>(m: &'m Model, name: &str) -> &'m FnNode {
        m.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("no fn `{name}` in model"))
    }

    #[test]
    fn statement_temp_guards_die_at_the_semicolon_bound_guards_persist() {
        let m = model_of(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn temp(&self) {\n\
                     *self.a.lock().unwrap() += 1;\n\
                     let g = self.b.lock().unwrap();\n\
                 }\n\
                 fn bound(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     let h = self.b.lock().unwrap();\n\
                 }\n\
             }\n",
        );
        let temp = node(&m, "temp");
        assert_eq!(temp.acquires.len(), 2);
        assert!(
            temp.acquires[1].held.is_empty(),
            "temp guard must die at `;`: {:?}",
            temp.acquires[1].held
        );
        let bound = node(&m, "bound");
        assert_eq!(bound.acquires[0].lock, "c/a");
        assert_eq!(
            bound.acquires[1].held,
            vec![Held {
                lock: "c/a".to_string(),
                line: bound.acquires[0].line
            }]
        );
    }

    #[test]
    fn drop_releases_a_bound_guard() {
        let m = model_of(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn re(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     drop(g);\n\
                     let h = self.a.lock().unwrap();\n\
                 }\n\
                 fn twice(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     let h = self.a.lock().unwrap();\n\
                 }\n\
             }\n",
        );
        let re = node(&m, "re");
        assert!(re.acquires[1].held.is_empty(), "{:?}", re.acquires[1].held);
        let twice = node(&m, "twice");
        assert_eq!(twice.acquires[1].held.len(), 1, "double-lock visible");
        assert_eq!(twice.acquires[1].lock, "c/a");
    }

    #[test]
    fn condvar_waits_record_loop_context_and_waited_guard() {
        let m = model_of(
            "struct S { m: Mutex<bool>, cv: Condvar }\n\
             impl S {\n\
                 fn good(&self) {\n\
                     let mut st = self.m.lock().unwrap();\n\
                     while !*st {\n\
                         st = self.cv.wait(st).unwrap();\n\
                     }\n\
                 }\n\
                 fn bad(&self) {\n\
                     let st = self.m.lock().unwrap();\n\
                     let st = self.cv.wait(st).unwrap();\n\
                 }\n\
             }\n",
        );
        let good = node(&m, "good");
        assert_eq!(good.waits.len(), 1);
        assert!(good.waits[0].in_loop);
        assert_eq!(good.waits[0].guard_lock.as_deref(), Some("c/m"));
        assert!(good.waits[0].others_held.is_empty());
        let bad = node(&m, "bad");
        assert!(!bad.waits[0].in_loop);
    }

    #[test]
    fn guard_returning_helpers_charge_acquisitions_to_the_caller() {
        let m = model_of(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                 m.lock().unwrap_or_else(|p| p.into_inner())\n\
             }\n\
             impl S {\n\
                 fn go(&self) {\n\
                     let g = lock(&self.a);\n\
                     let h = lock(&self.b);\n\
                 }\n\
             }\n",
        );
        assert!(node(&m, "lock").is_helper);
        assert!(
            node(&m, "lock").acquires.is_empty(),
            "helper body not walked"
        );
        let go = node(&m, "go");
        assert_eq!(go.acquires.len(), 2);
        assert_eq!(go.acquires[0].lock, "c/a");
        assert_eq!(go.acquires[1].lock, "c/b");
        assert_eq!(go.acquires[1].held.len(), 1, "a held across b");
        assert!(
            go.calls.is_empty(),
            "helper sites are acquisitions, not calls"
        );
    }

    #[test]
    fn lock_graph_finds_the_two_function_inversion_cycle() {
        let m = model_of(
            "struct S { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl S {\n\
                 fn ab(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     self.take_b();\n\
                 }\n\
                 fn ba(&self) {\n\
                     let g = self.b.lock().unwrap();\n\
                     self.take_a();\n\
                 }\n\
                 fn take_a(&self) { let g = self.a.lock().unwrap(); g; }\n\
                 fn take_b(&self) { let g = self.b.lock().unwrap(); g; }\n\
             }\n",
        );
        let r = m.analyze();
        let graph = m.lock_graph(&r);
        assert!(graph.contains_key(&("c/a".to_string(), "c/b".to_string())));
        assert!(graph.contains_key(&("c/b".to_string(), "c/a".to_string())));
        let cycles = find_cycles(&graph);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].nodes.first(), cycles[0].nodes.last());
        assert!(cycles[0].nodes.contains(&"c/a".to_string()));
        assert!(cycles[0].nodes.contains(&"c/b".to_string()));
        let rendered = m.render_lock_graph(&r);
        assert!(rendered.contains("edge c/a -> c/b"), "{rendered}");
    }

    #[test]
    fn blocking_reach_propagates_through_the_call_graph() {
        let m = model_of(
            "struct S { a: Mutex<u32> }\n\
             impl S {\n\
                 fn outer(&self) {\n\
                     let g = self.a.lock().unwrap();\n\
                     self.inner();\n\
                 }\n\
                 fn inner(&self) {\n\
                     self.file.sync_all();\n\
                 }\n\
             }\n",
        );
        let r = m.analyze();
        let outer_idx = m
            .fns
            .iter()
            .position(|f| f.name == "outer")
            .unwrap_or(usize::MAX);
        let inner_idx = m
            .fns
            .iter()
            .position(|f| f.name == "inner")
            .unwrap_or(usize::MAX);
        let inner_block = r.blocking.get(inner_idx).and_then(|w| w.as_ref());
        assert_eq!(inner_block.map(|w| w.what.as_str()), Some("sync_all"));
        let outer_block = r.blocking.get(outer_idx).and_then(|w| w.as_ref());
        assert_eq!(
            outer_block.map(|w| w.what.as_str()),
            Some("sync_all"),
            "blocking reach crosses the self-call"
        );
        assert!(outer_block.is_some_and(|w| w.path.contains(&"S::inner".to_string())));
    }
}

//! `ena-lint`: the workspace's determinism, robustness, and
//! concurrency static-analysis pass.
//!
//! The reproduction's headline claims rest on bit-exact determinism:
//! the golden harness (`ena-testkit`) and the content-addressed sweep
//! cache (`ena-sweep`) both assume the same seed always produces the
//! same bytes. This crate makes the invariants behind that assumption
//! machine-checked. A small Rust lexer walks every crate and enforces:
//!
//! - `no-unordered-iteration` — no `HashMap`/`HashSet` anywhere
//! - `no-panic-in-lib` — no `unwrap`/`expect`/`panic!`/`unreachable!`/
//!   literal indexing in library code outside `#[cfg(test)]`
//! - `no-wallclock` — no `Instant`/`SystemTime` outside the `timing`
//!   feature
//! - `stable-hash-coverage` — every field of a `StableHash` struct is
//!   hashed
//! - `forbid-unsafe` — every crate root carries
//!   `#![forbid(unsafe_code)]`
//! - `no-narrowing-cast` — no truncating `as` casts in library code
//! - `no-ignored-io-result` — no `let _ =` discarding an I/O `Result`
//!
//! A second, workspace-wide semantic phase ([`parser`], [`sema`],
//! [`rules::concurrency`]) recovers function bodies, tracks live lock
//! guards statement-by-statement, and propagates acquisitions and
//! blocking reach over an approximate call graph to enforce the
//! concurrency invariants:
//!
//! - `lock-order-cycle` — the workspace lock-acquisition graph is
//!   acyclic (violations carry the full witness chain)
//! - `double-lock` — no path re-acquires a lock it already holds
//! - `condvar-wait-not-in-loop` — waits re-check their predicate
//! - `blocking-under-lock` — no I/O/fsync/sleep/`evaluate_*` under a
//!   lock, outside justified `// ena:durability(lock): why` sections
//! - `guard-across-wait` — no unrelated guard held across a wait
//!
//! Per-crate levels live in `lint.toml`; single findings can be
//! suppressed in-source with a justified comment directive (see
//! [`scan::AllowDirective`]). Each directive suppresses exactly one
//! finding and must be used — stale directives are themselves
//! diagnostics, so suppressions never outlive the code they excused.
//! The inferred lock graph renders deterministically
//! ([`Report::lock_graph`]) and diagnostics are available as JSON
//! ([`Report::to_json`]) for archival.
//!
//! The tool lints itself: this crate's library code passes every rule
//! it enforces.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod scan;
pub mod sema;

use std::fs;
use std::path::{Path, PathBuf};

use config::{Level, LintConfig};
use diag::{Diagnostic, Severity};
use rules::Finding;
use scan::SourceFile;

/// Fatal tool error (I/O or malformed configuration) — distinct from
/// diagnostics, which are findings about the code under analysis.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem failure while scanning.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Rendered OS error.
        message: String,
    },
    /// `lint.toml` could not be parsed.
    Config(String),
}

impl LintError {
    pub(crate) fn io(path: &Path, e: std::io::Error) -> LintError {
        LintError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }
}

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintError::Io { path, message } => {
                write!(f, "io error at {}: {message}", path.display())
            }
            LintError::Config(message) => write!(f, "config error: {message}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Run options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workspace root to analyze.
    pub root: PathBuf,
    /// Explicit config path; defaults to `<root>/lint.toml`.
    pub config_path: Option<PathBuf>,
    /// Treat warnings as failures.
    pub deny_warnings: bool,
}

/// Outcome of one analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Sorted diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by in-source directives.
    pub suppressed: usize,
    /// The suppressed findings themselves (for `--json` transparency).
    pub suppressed_diagnostics: Vec<Diagnostic>,
    /// Deterministic rendering of the workspace lock-acquisition graph.
    pub lock_graph: String,
}

impl Report {
    /// True when the run should exit non-zero.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.diagnostics.iter().any(|d| {
            d.severity == Severity::Deny || (deny_warnings && d.severity == Severity::Warn)
        })
    }

    /// Human-readable rendering (diagnostics, then a summary line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "ena-lint: {} diagnostic(s) across {} file(s), {} suppressed by directives\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.suppressed,
        ));
        out
    }

    /// Machine-readable rendering: one stable JSON document with every
    /// diagnostic (active first, then suppressed, each in `sort_key`
    /// order) plus the run summary. Hand-rolled — the analyzer takes
    /// no dependencies.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn entry(d: &Diagnostic, suppressed: bool) -> String {
            format!(
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}, \"message\": \"{}\", \"hint\": \"{}\", \
                 \"suppressed\": {}}}",
                esc(d.rule),
                d.severity,
                esc(&d.file),
                d.line,
                esc(&d.message),
                esc(&d.hint),
                suppressed
            )
        }
        let mut rows: Vec<String> = self.diagnostics.iter().map(|d| entry(d, false)).collect();
        rows.extend(self.suppressed_diagnostics.iter().map(|d| entry(d, true)));
        let body = if rows.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", rows.join(",\n"))
        };
        format!(
            "{{\n  \"version\": 1,\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \
             \"diagnostics\": {body}\n}}\n",
            self.files_scanned, self.suppressed
        )
    }
}

/// Walks up from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start
        .ancestors()
        .find(|dir| {
            fs::read_to_string(dir.join("Cargo.toml"))
                .map(|text| text.lines().any(|l| l.trim() == "[workspace]"))
                .unwrap_or(false)
        })
        .map(Path::to_path_buf)
}

/// Loads the configuration for `opts` (built-in all-deny defaults when
/// no `lint.toml` exists).
pub fn load_config(opts: &Options) -> Result<LintConfig, LintError> {
    let path = opts
        .config_path
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.toml"));
    if !path.is_file() {
        return Ok(LintConfig::default());
    }
    let text = fs::read_to_string(&path).map_err(|e| LintError::io(&path, e))?;
    LintConfig::parse(&text).map_err(LintError::Config)
}

/// Runs the full analysis over the workspace at `opts.root`.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failure or malformed `lint.toml`;
/// findings about the analyzed code are reported in the [`Report`],
/// not as errors.
pub fn run(opts: &Options) -> Result<Report, LintError> {
    let cfg = load_config(opts)?;
    let crates = scan::load_workspace(&opts.root)?;
    let files_scanned = crates.iter().map(|k| k.files.len()).sum();

    // Phase 1: per-file and per-crate rules, collected per (crate,
    // file) so the workspace phase can append before suppression runs.
    let mut per_file: Vec<Vec<Vec<(&'static str, Finding)>>> = crates
        .iter()
        .map(|k| k.files.iter().map(|_| Vec::new()).collect())
        .collect();
    for (ci, krate) in crates.iter().enumerate() {
        for rule in rules::PER_FILE {
            if cfg.level_for(&krate.name, rule.id) == Level::Allow {
                continue;
            }
            for (fi, file) in krate.files.iter().enumerate() {
                if let Some(slot) = per_file.get_mut(ci).and_then(|c| c.get_mut(fi)) {
                    slot.extend((rule.check)(file).into_iter().map(|f| (rule.id, f)));
                }
            }
        }
        if cfg.level_for(&krate.name, rules::STABLE_HASH_ID) != Level::Allow {
            for (fi, finding) in rules::stable_hash::check_crate(&krate.files) {
                if let Some(slot) = per_file.get_mut(ci).and_then(|c| c.get_mut(fi)) {
                    slot.push((rules::STABLE_HASH_ID, finding));
                }
            }
        }
    }

    // Phase 2: the workspace-level concurrency rules. Their findings
    // route back into the owning file's list so `// ena:allow`
    // directives and per-crate levels apply uniformly.
    let ws = rules::concurrency::check_workspace(&crates);
    let mut diagnostics = Vec::new();
    for wf in ws.findings {
        let (ci, fi) = wf.file_idx;
        let crate_name = crates.get(ci).map(|k| k.name.as_str()).unwrap_or("");
        if cfg.level_for(crate_name, wf.rule) == Level::Allow {
            continue;
        }
        if let Some(slot) = per_file.get_mut(ci).and_then(|c| c.get_mut(fi)) {
            slot.push((wf.rule, wf.finding));
        }
    }
    for wf in ws.meta {
        let (ci, fi) = wf.file_idx;
        if let Some(file) = crates.get(ci).and_then(|k| k.files.get(fi)) {
            diagnostics.push(meta_diag(
                wf.rule,
                file,
                wf.finding.line,
                wf.finding.message,
                wf.finding.hint,
            ));
        }
    }

    // Phase 3: suppression directives and severity mapping.
    let mut suppressed_diagnostics = Vec::new();
    for (ci, krate) in crates.iter().enumerate() {
        for (fi, file) in krate.files.iter().enumerate() {
            let findings = per_file
                .get_mut(ci)
                .and_then(|c| c.get_mut(fi))
                .map(std::mem::take)
                .unwrap_or_default();
            let (kept, dropped, meta) = apply_allows(&cfg, file, findings);
            let to_diag = |(rule, finding): (&'static str, Finding)| {
                let severity = match cfg.level_for(&krate.name, rule) {
                    Level::Warn => Severity::Warn,
                    _ => Severity::Deny,
                };
                Diagnostic {
                    rule,
                    severity,
                    file: file.rel_path.clone(),
                    line: finding.line,
                    message: finding.message,
                    hint: finding.hint,
                }
            };
            diagnostics.extend(kept.into_iter().map(to_diag));
            suppressed_diagnostics.extend(dropped.into_iter().map(to_diag));
            diagnostics.extend(meta);
        }
    }
    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    suppressed_diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Ok(Report {
        diagnostics,
        files_scanned,
        suppressed: suppressed_diagnostics.len(),
        suppressed_diagnostics,
        lock_graph: ws.lock_graph,
    })
}

/// Applies in-source allow directives to one file's findings.
///
/// Each valid directive suppresses exactly one finding of its rule on
/// the directive's own line or the line directly below. Invalid
/// directives (unknown rule, missing justification) and unused ones
/// become diagnostics themselves, so the suppression surface stays
/// reviewable and minimal.
#[allow(clippy::type_complexity)]
fn apply_allows(
    cfg: &LintConfig,
    file: &SourceFile,
    findings: Vec<(&'static str, Finding)>,
) -> (
    Vec<(&'static str, Finding)>,
    Vec<(&'static str, Finding)>,
    Vec<Diagnostic>,
) {
    let mut live: Vec<Option<(&'static str, Finding)>> = findings.into_iter().map(Some).collect();
    let mut meta = Vec::new();
    let mut suppressed = Vec::new();
    for directive in &file.allows {
        if !rules::is_known_rule(&directive.rule) {
            meta.push(meta_diag(
                rules::INVALID_ALLOW_ID,
                file,
                directive.line,
                format!("allow directive names unknown rule `{}`", directive.rule),
                "use one of the ids listed by `ena-lint --list-rules`".into(),
            ));
            continue;
        }
        if directive.justification.is_empty() {
            meta.push(meta_diag(
                rules::INVALID_ALLOW_ID,
                file,
                directive.line,
                format!(
                    "allow directive for `{}` has no justification",
                    directive.rule
                ),
                "append `: <why this single site is exempt>`".into(),
            ));
            continue;
        }
        let slot = live.iter_mut().find(|slot| {
            slot.as_ref().is_some_and(|(rule, f)| {
                *rule == directive.rule
                    && (f.line == directive.line || f.line == directive.line + 1)
            })
        });
        match slot {
            Some(s) => {
                if let Some(taken) = s.take() {
                    suppressed.push(taken);
                }
            }
            None => {
                // A directive for a rule the config already allows is
                // merely redundant, not an error.
                if cfg.level_for(&file.crate_name, &directive.rule) != Level::Allow {
                    meta.push(meta_diag(
                        rules::UNUSED_ALLOW_ID,
                        file,
                        directive.line,
                        format!(
                            "allow directive for `{}` suppresses nothing",
                            directive.rule
                        ),
                        "delete the stale directive (it must sit on the offending line \
                         or the line above)"
                            .into(),
                    ));
                }
            }
        }
    }
    (live.into_iter().flatten().collect(), suppressed, meta)
}

fn meta_diag(
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    message: String,
    hint: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Deny,
        file: file.rel_path.clone(),
        line,
        message,
        hint,
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use crate::scan::SourceFile;

    /// Builds a [`SourceFile`] directly from source text for rule tests.
    pub fn file_from_source(src: &str, in_crate: &str) -> SourceFile {
        SourceFile::from_source("test-crate", in_crate, in_crate, src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_util::file_from_source;

    #[allow(clippy::type_complexity)]
    fn run_allows(
        src: &str,
        findings: Vec<(&'static str, Finding)>,
    ) -> (
        Vec<(&'static str, Finding)>,
        Vec<(&'static str, Finding)>,
        Vec<Diagnostic>,
    ) {
        let file = file_from_source(src, "src/lib.rs");
        apply_allows(&LintConfig::default(), &file, findings)
    }

    fn finding(line: u32) -> Finding {
        Finding {
            line,
            message: "m".into(),
            hint: "h".into(),
        }
    }

    #[test]
    fn directive_suppresses_exactly_one_finding() {
        let src = "// ena:allow(no-wallclock): one-off telemetry probe\nlet a = 1;\n";
        let findings = vec![("no-wallclock", finding(2)), ("no-wallclock", finding(2))];
        let (kept, suppressed, meta) = run_allows(src, findings);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 1, "second finding on the line survives");
        assert!(meta.is_empty());
    }

    #[test]
    fn unjustified_and_unknown_directives_are_diagnostics() {
        let src = "// ena:allow(no-wallclock)\n// ena:allow(made-up-rule): because\n";
        let (_, suppressed, meta) = run_allows(src, vec![("no-wallclock", finding(1))]);
        assert!(suppressed.is_empty());
        assert_eq!(meta.len(), 2, "{meta:?}");
        assert!(meta.iter().all(|d| d.rule == "invalid-allow"));
    }

    #[test]
    fn unused_directive_is_a_diagnostic() {
        let src = "// ena:allow(no-wallclock): stale excuse\nlet a = 1;\n";
        let (_, suppressed, meta) = run_allows(src, Vec::new());
        assert!(suppressed.is_empty());
        assert_eq!(meta.len(), 1);
        assert_eq!(meta.first().map(|d| d.rule), Some("unused-allow"));
    }

    #[test]
    fn directive_reaches_same_line_and_next_line_only() {
        let src = "// ena:allow(no-wallclock): next-line probe\nlet a = 1;\n";
        let (kept, suppressed, _) = run_allows(src, vec![("no-wallclock", finding(3))]);
        assert!(suppressed.is_empty(), "line 3 is out of reach");
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn workspace_root_discovery_finds_a_workspace_manifest() {
        let here = std::env::current_dir().unwrap();
        let root = find_workspace_root(&here).expect("inside the ena workspace");
        assert!(root.join("Cargo.toml").is_file());
    }
}

//! End-to-end tests: ena-lint over the fixture workspace in
//! `tests/fixtures/ws` (one violation of every rule, plus one exercised
//! suppression directive), and over the real workspace (which must be
//! clean).
//!
//! Regenerate the golden rendering after an intentional diagnostic
//! change with `ENA_UPDATE_GOLDEN=1 cargo test -p ena-lint`.

use std::path::{Path, PathBuf};

use ena_lint::{find_workspace_root, rules, Options, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn run_fixture() -> Report {
    let opts = Options {
        root: fixture_root(),
        config_path: None,
        deny_warnings: true,
    };
    ena_lint::run(&opts).expect("fixture workspace scans")
}

#[test]
fn seeding_a_violation_of_every_rule_fails_the_run() {
    let report = run_fixture();
    for rule in rules::all_rule_ids() {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "rule `{rule}` produced no diagnostic on the fixture:\n{}",
            report.render()
        );
    }
    assert!(
        report.failed(false),
        "deny findings must make the run exit non-zero"
    );
}

#[test]
fn diagnostics_match_the_golden_rendering() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.txt");
    let got = run_fixture().render();
    if std::env::var_os("ENA_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden.txt exists");
    assert_eq!(
        got, want,
        "diagnostic rendering drifted from tests/fixtures/golden.txt \
         (rerun with ENA_UPDATE_GOLDEN=1 if intentional)"
    );
}

#[test]
fn allow_directive_suppresses_exactly_one_finding() {
    let report = run_fixture();
    // One wallclock directive plus one twin per workspace concurrency
    // rule in fixture-conc.
    assert_eq!(report.suppressed, 6, "{}", report.render());
    for (rule, _) in rules::WORKSPACE {
        let active = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == *rule)
            .count();
        let muted = report
            .suppressed_diagnostics
            .iter()
            .filter(|d| d.rule == *rule)
            .count();
        assert_eq!(
            (active, muted),
            (1, 1),
            "rule `{rule}` must fire once on `Pair` and once (suppressed) on `Quiet`:\n{}",
            report.render()
        );
    }
    let survivors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-wallclock" && d.file.ends_with("allowed.rs"))
        .collect();
    assert_eq!(
        survivors.len(),
        1,
        "one of the two same-line findings must survive:\n{}",
        report.render()
    );
    assert!(
        survivors[0].message.contains("SystemTime"),
        "the directive consumes the first finding (Instant), not the second"
    );
}

#[test]
fn seeded_cycle_reports_the_full_witness_chain() {
    let report = run_fixture();
    let cycle = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "lock-order-cycle")
        .expect("seeded cycle is reported");
    assert!(
        cycle
            .message
            .contains("fixture-conc/a -> fixture-conc/b -> fixture-conc/a"),
        "cycle names every lock in order: {}",
        cycle.message
    );
    for witness in [
        "fixture-conc/a -> fixture-conc/b at crates/conc/src/lib.rs:",
        "fixture-conc/b -> fixture-conc/a at crates/conc/src/lib.rs:",
        "via Pair::ab",
        "via Pair::ba",
    ] {
        assert!(
            cycle.hint.contains(witness),
            "witness chain must carry `{witness}`: {}",
            cycle.hint
        );
    }
}

#[test]
fn json_output_is_machine_readable_and_complete() {
    let report = run_fixture();
    let json = report.to_json();
    assert!(json.starts_with("{\n  \"version\": 1,"), "{json}");
    assert!(json.contains(&format!("\"files_scanned\": {}", report.files_scanned)));
    assert!(json.contains("\"suppressed\": 6"), "{json}");
    let active = json.matches("\"suppressed\": false").count();
    let muted = json.matches("\"suppressed\": true").count();
    assert_eq!(
        (active, muted),
        (
            report.diagnostics.len(),
            report.suppressed_diagnostics.len()
        ),
        "{json}"
    );
    for (rule, _) in rules::WORKSPACE {
        assert!(json.contains(&format!("\"rule\": \"{rule}\"")), "{json}");
    }
    // The golden's first diagnostic must round-trip with escaping intact.
    assert!(
        json.contains("\"message\": \"`SystemTime` read outside the `timing` feature\""),
        "{json}"
    );
}

/// Acceptance criterion: the emitted lock graph is byte-identical
/// across two *separate process* runs (fresh address space), over both
/// the fixture workspace (edges + cycles) and the real workspace
/// (edge-free). Same re-exec pattern as the fabric determinism tests.
#[test]
fn lock_graph_is_byte_identical_across_processes() {
    const MODE: &str = "ENA_LINT_GRAPH_MODE";
    let graphs = || {
        let fixture = run_fixture().lock_graph;
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the ena workspace");
        let opts = Options {
            root,
            config_path: None,
            deny_warnings: true,
        };
        let real = ena_lint::run(&opts).expect("workspace scans").lock_graph;
        format!("{fixture}--8<--\n{real}")
    };
    if std::env::var_os(MODE).is_some() {
        print!("GRAPH>>>{}<<<GRAPH", graphs());
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let child_graphs = || {
        let out = std::process::Command::new(&exe)
            .args([
                "lock_graph_is_byte_identical_across_processes",
                "--exact",
                "--nocapture",
            ])
            .env(MODE, "1")
            .output()
            .expect("child test process");
        assert!(out.status.success(), "child run failed: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let start = stdout.find("GRAPH>>>").expect("marker") + "GRAPH>>>".len();
        let end = stdout.find("<<<GRAPH").expect("end marker");
        stdout[start..end].to_string()
    };
    let first = child_graphs();
    let second = child_graphs();
    assert_eq!(first, second, "lock graph differs between processes");
    assert_eq!(first, graphs(), "parent and child disagree");
    assert!(
        first.contains("edge fixture-conc/a -> fixture-conc/b"),
        "fixture graph carries the seeded edge:\n{first}"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("inside the ena workspace");
    let opts = Options {
        root,
        config_path: None,
        deny_warnings: true,
    };
    let report = ena_lint::run(&opts).expect("workspace scans");
    assert!(
        !report.failed(true),
        "the workspace must lint clean:\n{}",
        report.render()
    );
}

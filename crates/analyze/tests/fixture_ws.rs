//! End-to-end tests: ena-lint over the fixture workspace in
//! `tests/fixtures/ws` (one violation of every rule, plus one exercised
//! suppression directive), and over the real workspace (which must be
//! clean).
//!
//! Regenerate the golden rendering after an intentional diagnostic
//! change with `ENA_UPDATE_GOLDEN=1 cargo test -p ena-lint`.

use std::path::{Path, PathBuf};

use ena_lint::{find_workspace_root, rules, Options, Report};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn run_fixture() -> Report {
    let opts = Options {
        root: fixture_root(),
        config_path: None,
        deny_warnings: true,
    };
    ena_lint::run(&opts).expect("fixture workspace scans")
}

#[test]
fn seeding_a_violation_of_every_rule_fails_the_run() {
    let report = run_fixture();
    for rule in rules::all_rule_ids() {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "rule `{rule}` produced no diagnostic on the fixture:\n{}",
            report.render()
        );
    }
    assert!(
        report.failed(false),
        "deny findings must make the run exit non-zero"
    );
}

#[test]
fn diagnostics_match_the_golden_rendering() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.txt");
    let got = run_fixture().render();
    if std::env::var_os("ENA_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden.txt exists");
    assert_eq!(
        got, want,
        "diagnostic rendering drifted from tests/fixtures/golden.txt \
         (rerun with ENA_UPDATE_GOLDEN=1 if intentional)"
    );
}

#[test]
fn allow_directive_suppresses_exactly_one_finding() {
    let report = run_fixture();
    assert_eq!(report.suppressed, 1, "{}", report.render());
    let survivors: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-wallclock" && d.file.ends_with("allowed.rs"))
        .collect();
    assert_eq!(
        survivors.len(),
        1,
        "one of the two same-line findings must survive:\n{}",
        report.render()
    );
    assert!(
        survivors[0].message.contains("SystemTime"),
        "the directive consumes the first finding (Instant), not the second"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("inside the ena workspace");
    let opts = Options {
        root,
        config_path: None,
        deny_warnings: true,
    };
    let report = ena_lint::run(&opts).expect("workspace scans");
    assert!(
        !report.failed(true),
        "the workspace must lint clean:\n{}",
        report.render()
    );
}

// Fixture: the directive below must suppress exactly ONE of the two
// wallclock findings on the line that follows it — the second survives.

// ena:allow(no-wallclock): deliberate single-site exemption exercised by the suppression test
pub fn two_clocks() -> (std::time::Instant, std::time::SystemTime) {
    clock_pair()
}

// Fixture: exactly one violation of every ena-lint rule. This file is
// scanned by the integration tests, never compiled by cargo. The
// missing `#![forbid(unsafe_code)]` header is itself the forbid-unsafe
// violation (line 1).

pub struct CacheKey {
    pub seed: u64,
    pub step: u64,
}

impl StableHash for CacheKey {
    fn stable_hash(&self, sink: &mut Vec<u64>) {
        sink.push(self.seed);
    }
}

pub fn lookup(table: &std::collections::HashMap<u64, u64>, key: u64) -> u64 {
    *table.get(&key).unwrap()
}

pub fn stamp_origin() -> std::time::Instant {
    unimplemented()
}

pub fn narrow(x: u64) -> u16 {
    x as u16
}

pub fn cleanup(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
}

// Fixture: exactly one violation of every workspace concurrency rule
// (on `Pair`), plus one suppressed twin of each (on `Quiet`) so the
// suppression tests can assert the directives consume exactly one
// finding apiece. Scanned by the integration tests, never compiled.
#![forbid(unsafe_code)]

use std::sync::{Condvar, Mutex};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
    cv: Condvar,
    state: Mutex<bool>,
}

impl Pair {
    // One half of the seeded two-function lock-order cycle: a -> b here,
    // b -> a in `ba` below.
    pub fn ab(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let h = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    pub fn ba(&self) -> u32 {
        let g = self.b.lock().unwrap_or_else(|p| p.into_inner());
        let h = self.a.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    // Re-acquiring `a` while its guard is live: std mutexes are not
    // reentrant, so this deadlocks (or worse) at runtime.
    pub fn twice(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let h = self.a.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    // Wait without a predicate loop: spurious wakeups return early.
    pub fn nap(&self) -> bool {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        *st
    }

    // Sleeping while `a` is held stalls every contender.
    pub fn slow(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
        std::thread::sleep(std::time::Duration::from_millis(1));
        *g
    }

    // The wait releases only `state`; `a` stays held for the whole
    // sleep, starving everyone who needs it.
    pub fn deadlockish(&self) -> u32 {
        let g = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while !*st {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        *g
    }
}

pub struct Quiet {
    c: Mutex<u32>,
    d: Mutex<u32>,
    cv2: Condvar,
    flag: Mutex<bool>,
}

impl Quiet {
    // Suppressed twin of the `ab`/`ba` cycle: the directive sits on the
    // cycle's anchor line (the earliest edge witness, `d` under `c`).
    pub fn cd(&self) -> u32 {
        let g = self.c.lock().unwrap_or_else(|p| p.into_inner());
        // ena:allow(lock-order-cycle): fixture twin proving the directive consumes exactly one cycle report
        let h = self.d.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    pub fn dc(&self) -> u32 {
        let g = self.d.lock().unwrap_or_else(|p| p.into_inner());
        let h = self.c.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    pub fn twice2(&self) -> u32 {
        let g = self.c.lock().unwrap_or_else(|p| p.into_inner());
        // ena:allow(double-lock): fixture twin proving the directive consumes exactly one re-acquisition report
        let h = self.c.lock().unwrap_or_else(|p| p.into_inner());
        *g + *h
    }

    pub fn nap2(&self) -> bool {
        let st = self.flag.lock().unwrap_or_else(|p| p.into_inner());
        // ena:allow(condvar-wait-not-in-loop): fixture twin proving the directive consumes exactly one wait report
        let st = self.cv2.wait(st).unwrap_or_else(|p| p.into_inner());
        *st
    }

    pub fn slow2(&self) -> u32 {
        let g = self.c.lock().unwrap_or_else(|p| p.into_inner());
        // ena:allow(blocking-under-lock): fixture twin proving the directive consumes exactly one blocking report
        std::thread::sleep(std::time::Duration::from_millis(1));
        *g
    }

    pub fn hold2(&self) -> u32 {
        let g = self.c.lock().unwrap_or_else(|p| p.into_inner());
        let mut st = self.flag.lock().unwrap_or_else(|p| p.into_inner());
        while !*st {
            // ena:allow(guard-across-wait): fixture twin proving the directive consumes exactly one guard report
            st = self.cv2.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        *g
    }
}

//! `ena` — a Rust reproduction of the HPCA 2017 exascale-APU study
//! ("Design and Analysis of an APU for Exascale Computing").
//!
//! This facade re-exports the workspace crates:
//!
//! - [`model`] — typed units, hardware configuration, kernel profiles.
//! - [`workloads`] — the executable proxy-application suite (Table I).
//! - [`noc`] — the chiplet/interposer network-on-chip simulator.
//! - [`memory`] — the multi-level memory system (HBM stacks + external
//!   memory network + management policies).
//! - [`power`] — DVFS, per-component power, the Section V-E optimizations.
//! - [`thermal`] — HotSpot-style compact thermal modeling.
//! - [`gpu`] — cycle-approximate wavefront timing simulation (the
//!   "gem5-APU adjustment" substrate).
//! - [`hsa`] — the HSA runtime substrate: user-mode queues, signals, task
//!   DAGs, scoped synchronization.
//! - [`cpu`] — CPU-side modeling: the leading-loads performance predictor
//!   and PPEP-style DVFS power prediction.
//! - [`core`] — the node simulator, design-space exploration, dynamic
//!   reconfiguration, RAS modeling, and system scaling.
//! - [`faults`] — cross-layer fault injection and graceful degradation:
//!   seeded failure campaigns, the `Degradable` contract, and degradation
//!   reports cross-checked against the analytic availability models.
//! - [`sweep`] — the deterministic parallel design-space-exploration
//!   engine: work-stealing sweep, content-addressed memoization with
//!   checkpoint/resume, and Pareto-frontier extraction, byte-identical
//!   to the sequential explorer.
//! - [`fabric`] — the inter-node layer: Infinity-Fabric-style links with
//!   asymmetric per-direction latency/bandwidth, cabinet topologies
//!   (fat-tree, torus, dragonfly-lite), collective schedules with
//!   per-link contention, multi-node fault campaigns, and the
//!   (nodes x topology) sweep axis.
//!
//! # Quickstart
//!
//! ```
//! use ena::core::node::{EvalOptions, NodeSimulator};
//! use ena::model::config::EhpConfig;
//! use ena::workloads::profile_for;
//!
//! let sim = NodeSimulator::new();
//! let config = EhpConfig::paper_baseline(); // 320 CUs / 1 GHz / 3 TB/s
//! let profile = profile_for("CoMD").expect("CoMD is in the suite");
//! let eval = sim.evaluate(&config, &profile, &EvalOptions::default());
//!
//! println!(
//!     "CoMD: {:.1} TF at {:.0} W package power",
//!     eval.perf.throughput.teraflops(),
//!     eval.package_power().value(),
//! );
//! assert!(eval.package_power().value() <= 160.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `figures` binary in
//! `crates/bench` for regenerating every table and figure of the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ena_core as core;
pub use ena_cpu as cpu;
pub use ena_fabric as fabric;
pub use ena_faults as faults;
pub use ena_gpu as gpu;
pub use ena_hsa as hsa;
pub use ena_memory as memory;
pub use ena_model as model;
pub use ena_noc as noc;
pub use ena_power as power;
pub use ena_serve as serve;
pub use ena_sweep as sweep;
pub use ena_thermal as thermal;
pub use ena_workloads as workloads;

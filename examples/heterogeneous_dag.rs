//! A molecular-dynamics timestep as an HSA task DAG on the EHP: CPU
//! neighbor-list maintenance, a fan of GPU force kernels, GPU integration,
//! and a CPU I/O/reduction tail — the programming model of the paper's
//! Section II-A.1 in action.
//!
//! Run with `cargo run --release --example heterogeneous_dag`.

use ena::hsa::runtime::{AgentKind, Runtime, RuntimeConfig};
use ena::hsa::task::{TaskCost, TaskGraph};

fn md_timestep(force_kernels: u32) -> TaskGraph {
    let mut g = TaskGraph::new();
    let neigh = g.add("neighbor-list", TaskCost::cpu(120.0), &[]).unwrap();
    let forces: Vec<_> = (0..force_kernels)
        .map(|i| {
            g.add(
                format!("force[{i}]"),
                TaskCost::gpu(900.0 / f64::from(force_kernels)),
                &[neigh],
            )
            .unwrap()
        })
        .collect();
    let integrate = g.add("integrate", TaskCost::gpu(60.0), &forces).unwrap();
    g.add("reduce+io", TaskCost::either(80.0, 150.0), &[integrate])
        .unwrap();
    g
}

fn main() {
    println!("MD timestep DAG on the EHP (8 GPU queues, 32 CPU cores)\n");
    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10}",
        "kernels", "HSA (us)", "legacy (us)", "GPU util", "sync (us)"
    );
    for k in [1, 2, 4, 8, 16, 64] {
        let g = md_timestep(k);
        let hsa = Runtime::new(RuntimeConfig::hsa()).execute(&g);
        let legacy = Runtime::new(RuntimeConfig::legacy_driver()).execute(&g);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>10.2} {:>10.1}",
            k,
            hsa.makespan_us,
            legacy.makespan_us,
            hsa.utilization(AgentKind::GpuQueue, 8),
            hsa.sync_overhead_us,
        );
    }
    println!(
        "\nthe fan-out sweet spot balances queue-level parallelism against\n\
         per-dispatch overhead; the legacy driver path pushes it coarser."
    );
}

//! Extension scenario: a phased HPC job on the ENA with a reconfiguration
//! runtime and RAS accounting — the Section VI research directions played
//! out end-to-end.
//!
//! Run with `cargo run --release --example resilient_reconfiguration`.

use ena::core::dse::DesignSpace;
use ena::core::node::NodeSimulator;
use ena::core::reconfig::{run_phases, OraclePolicy, Phase, ReactivePolicy, StaticPolicy};
use ena::core::resilience::{checkpoint_efficiency, Protection, ResilienceModel};
use ena::core::Explorer;
use ena::faults::{crosscheck_availability, run_campaign, CampaignSpec};
use ena::model::config::{EhpConfig, SYSTEM_NODE_COUNT};
use ena::model::units::Seconds;
use ena::workloads::{paper_profiles, profile_for};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = NodeSimulator::new();
    let explorer = Explorer::default();
    let space = DesignSpace::coarse();
    let profiles = paper_profiles();

    // A job alternating between force computation and transport phases.
    let mut phases = Vec::new();
    for _ in 0..4 {
        for _ in 0..3 {
            phases.push(Phase {
                profile: profile_for("CoMD").unwrap(),
                work_gflop: 60_000.0,
            });
        }
        for _ in 0..3 {
            phases.push(Phase {
                profile: profile_for("SNAP").unwrap(),
                work_gflop: 8_000.0,
            });
        }
    }

    println!("reconfiguration policies over {} phases:\n", phases.len());
    let mean = explorer.explore(&space, &profiles)?.best_mean;
    let mut static_p = StaticPolicy(mean);
    let mut reactive_p = ReactivePolicy::new(&explorer, &space, &profiles)?;
    let mut oracle_p = OraclePolicy::new(&explorer, &space, &profiles)?;
    let policies: [&mut dyn ena::core::reconfig::ReconfigPolicy; 3] =
        [&mut static_p, &mut reactive_p, &mut oracle_p];
    for policy in policies {
        let r = run_phases(&sim, policy, &phases, &explorer.options, Seconds::new(2e-3))?;
        println!(
            "  {:<9} {:>8.2} s  {:>8.1} kJ  {:>3} switches  avg {:>5.1} W",
            r.policy,
            r.time.value(),
            r.energy.value() / 1000.0,
            r.switches,
            r.avg_power_w(),
        );
    }

    println!("\nresiliency at 100,000 nodes (CoMD):");
    let model = ResilienceModel::default();
    let config = EhpConfig::paper_baseline();
    let comd = profile_for("CoMD").unwrap();
    for (label, v, p) in [
        ("ECC only          ", 1.0, Protection::ecc_only()),
        ("ECC + RMT         ", 1.0, Protection::ecc_and_rmt()),
        ("ECC + RMT, NTC V  ", 0.75, Protection::ecc_and_rmt()),
    ] {
        let r = model.assess(&config, &comd, v, p);
        let mttf = r.system_mttf_hours(SYSTEM_NODE_COUNT);
        println!(
            "  {label} system MTTF {:>6.2} h  checkpoint efficiency {:.3}",
            mttf,
            checkpoint_efficiency(mttf, 2.0),
        );
    }

    // Cross-validate the closed-form availability against an injected
    // Monte Carlo fault campaign, on the healthy node and again on a node
    // degraded by a seeded failure campaign.
    println!("\navailability, analytic vs injected (CoMD, 3 min checkpoints):");
    let seed = 0xC0FFEE;
    let healthy = crosscheck_availability(&config, &comd, 3.0, seed);
    println!(
        "  healthy   analytic {:.4}  injected {:.4}  (gap {:.4})",
        healthy.analytic,
        healthy.injected,
        healthy.gap()
    );
    match run_campaign(&CampaignSpec::standard(seed)) {
        Ok(report) => {
            let d = &report.degraded_availability;
            let last = report.final_snapshot();
            println!(
                "  degraded  analytic {:.4}  injected {:.4}  (gap {:.4})",
                d.analytic,
                d.injected,
                d.gap()
            );
            println!(
                "  (after losing {} GPU chiplets, {} HBM stacks: {:.1}% throughput retained)",
                8 - last.gpu_chiplets,
                8 - last.hbm_stacks,
                100.0 * report.throughput_retained(),
            );
        }
        Err(e) => println!("  campaign failed: {e}"),
    }
    Ok(())
}

//! Fault-injection campaign: kill a GPU chiplet, an HBM stack, and two
//! interposer ring segments mid-run, and watch every layer degrade
//! gracefully — the NoC reroutes, memory re-interleaves, the runtime
//! re-queues orphaned tasks, and the availability models are cross-checked
//! analytic-vs-injected on the surviving hardware.
//!
//! Run with `cargo run --release --example fault_campaign`.

use ena::faults::{run_campaign, CampaignSpec};

fn main() {
    let spec = CampaignSpec::standard(0xC0FFEE);
    println!("{}", spec.plan);

    match run_campaign(&spec) {
        Ok(report) => {
            print!("{}", report.render());
            println!(
                "\nsame seed, same report: the campaign is deterministic \
                 (seed {:#x})",
                spec.plan.seed
            );
        }
        Err(e) => println!("campaign failed: {e}"),
    }
}

//! Drives real workload traces through the trace-driven memory system,
//! comparing management policies and injecting a link failure.
//!
//! Run with `cargo run --release --example memory_system_tuning`.

use ena::memory::extnet::ModuleId;
use ena::memory::policy::{HardwareCache, SoftwareManaged, StaticPlacement};
use ena::memory::system::MemorySystem;
use ena::memory::PlacementPolicy;
use ena::model::config::EhpConfig;
use ena::workloads::app::{ProxyApp, RunConfig};
use ena::workloads::apps::{Lulesh, XsBench};
use ena::workloads::trace::AccessKind;

fn replay(app: &dyn ProxyApp, policy: Box<dyn PlacementPolicy>, epoch: u64) {
    let name = policy.name();
    let run = app.run(&RunConfig::small());
    let mut system = MemorySystem::new(&EhpConfig::paper_baseline(), policy, epoch);
    let accesses: Vec<(u64, bool)> = run
        .trace
        .accesses()
        .iter()
        .map(|a| (a.addr, a.kind == AccessKind::Write))
        .collect();
    let stats = system.replay(accesses);
    println!(
        "  {:<17} in-package {:>5.1}%  avg latency {:>6.1} cyc  migrations {:>6}",
        name,
        100.0 * stats.in_package_fraction(),
        stats.avg_latency_cycles(),
        stats.migrations,
    );
}

fn main() {
    // Small in-package capacities exercise the policies; real footprints of
    // the mini-kernels are megabytes.
    let capacity = 2 * 1024 * 1024;

    for (label, app) in [("XSBench", &XsBench as &dyn ProxyApp), ("LULESH", &Lulesh)] {
        println!("{label}:");
        replay(app, Box::new(StaticPlacement::new(0.8)), u64::MAX);
        replay(app, Box::new(SoftwareManaged::new(capacity)), 10_000);
        replay(app, Box::new(HardwareCache::new(capacity)), u64::MAX);
    }

    // Failure injection: cut one SerDes link and watch accesses fail, then
    // enable redundancy and watch them reroute.
    println!("\nlink-failure injection (interface 0, depth 0):");
    let mut system = MemorySystem::new(
        &EhpConfig::paper_baseline(),
        Box::new(StaticPlacement::new(0.0)),
        u64::MAX,
    );
    system.external_mut().fail_link(ModuleId {
        interface: 0,
        depth: 0,
    });
    let mut failed = 0;
    for page in 0..64u64 {
        if system.access(page * 4096, 64, false).is_err() {
            failed += 1;
        }
    }
    println!("  without redundancy: {failed}/64 accesses unreachable");
    println!("  (see ena-memory's extnet tests for the rerouted case)");
}

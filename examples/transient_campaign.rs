//! Transient-fault campaign: ECC-classified HBM errors, link CRC
//! retransmits, and agent soft-hangs arrive on MTBF-driven schedules
//! while an iterative application checkpoints its way forward —
//! corrected errors cost latency, uncorrectable ones roll the run back
//! to its last checkpoint, and silent escapes are tracked for the
//! report. A Young/Daly recovery model then cross-checks the achieved
//! multi-node efficiency analytically and by Monte Carlo.
//!
//! Run with `cargo run --release --example transient_campaign`.
//!
//! The rendered report is also written to
//! `artifacts/transient_campaign.txt`, the golden artifact compared
//! (with per-metric tolerance) by `tests/end_to_end.rs`.

use ena::fabric::RecoveryModel;
use ena::faults::{run_transient_campaign, TransientCampaignSpec, TransientSchedule};
use ena_testkit::golden::artifacts_dir;

fn main() {
    let spec = TransientCampaignSpec::standard(0xC0FFEE);
    let schedule = TransientSchedule::sample(spec.seed, spec.rates, spec.horizon_us());
    println!("{schedule}");

    let report = run_transient_campaign(&spec);
    print!("{}", report.render());

    println!();
    let recovery = RecoveryModel::new(96.0, 3.0);
    println!("Young/Daly checkpoint/restart ({recovery}):");
    for nodes in [2u32, 4, 8] {
        let est = recovery.assess(nodes, spec.seed);
        println!(
            "  N={nodes}: interval {:.3} h | analytic {:.4} | simulated {:.4} | gap {:.4}",
            est.interval_hours,
            est.analytic,
            est.simulated,
            est.gap()
        );
    }

    let path = artifacts_dir().join("transient_campaign.txt");
    match std::fs::write(&path, report.render()) {
        Ok(()) => println!("\ngolden artifact written to {}", path.display()),
        Err(e) => println!("\ncannot write {}: {e}", path.display()),
    }
    println!(
        "same seed, same report: the campaign is deterministic (seed {:#x})",
        spec.seed
    );
}

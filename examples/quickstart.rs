//! Quickstart: evaluate the paper's baseline node on the workload suite.
//!
//! Run with `cargo run --example quickstart`.

use ena::core::node::{EvalOptions, NodeSimulator};
use ena::model::config::EhpConfig;
use ena::workloads::paper_profiles;

fn main() {
    let sim = NodeSimulator::new();
    let config = EhpConfig::paper_baseline();

    println!(
        "EHP baseline: {} CUs @ {} / {:.0} GB/s in-package, {:.0} GB node memory",
        config.gpu.total_cus(),
        config.gpu.clock,
        config.hbm.total_bandwidth().value(),
        config.total_memory_capacity().value(),
    );
    println!(
        "peak: {:.1} DP teraflops\n",
        config.peak_throughput().teraflops()
    );

    println!(
        "{:<10} {:>9} {:>11} {:>10} {:>10}",
        "app", "TF", "package W", "node W", "GF/W"
    );
    for profile in paper_profiles() {
        let eval = sim.evaluate(&config, &profile, &EvalOptions::default());
        println!(
            "{:<10} {:>9.2} {:>11.1} {:>10.1} {:>10.1}",
            profile.name,
            eval.perf.throughput.teraflops(),
            eval.package_power().value(),
            eval.node_power().value(),
            eval.efficiency(),
        );
    }

    // Thermal check for the hottest workload.
    let maxflops = paper_profiles()
        .into_iter()
        .next()
        .expect("suite is non-empty");
    let eval = sim.evaluate(&config, &maxflops, &EvalOptions::default());
    let t = sim
        .thermal(&config, &eval)
        .expect("thermal solve converges");
    println!(
        "\nMaxFlops peak in-package DRAM temperature: {:.1} (limit 85 degC)",
        t.peak_dram()
    );
}

//! Explores the thermal feasibility of aggressive die stacking (paper
//! Section V-D): how much CU power fits under the 85 degC DRAM limit for
//! different cooling assumptions, and what the bottom DRAM die sees.
//!
//! Run with `cargo run --release --example thermal_headroom`.

use ena::thermal::ehp::{ChipletPower, ChipletThermalModel};
use ena::thermal::DRAM_TEMP_LIMIT;

fn peak_at(cu_dynamic_w: f64, sink_scale: f64) -> f64 {
    let mut model = ChipletThermalModel::new(ChipletPower {
        cu_dynamic_w,
        cu_static_w: 2.0,
        dram_dynamic_w: 2.5,
        dram_static_w: 0.6,
        interposer_w: 1.5,
    });
    model.grid_mut().sink_resistance *= sink_scale;
    model
        .solve()
        .expect("thermal solve converges")
        .peak_dram()
        .value()
}

fn main() {
    println!("peak DRAM temperature (degC) vs per-chiplet CU power and cooling\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "CU W", "liquid-ish", "high-end air", "budget air"
    );
    for cu_w in [4.0, 8.0, 12.0, 16.0, 20.0] {
        println!(
            "{:>10.1} {:>12.1} {:>12.1} {:>12.1}",
            cu_w,
            peak_at(cu_w, 0.5),
            peak_at(cu_w, 1.0),
            peak_at(cu_w, 1.5),
        );
    }

    // Find the CU-power headroom under the default cooling.
    let mut w = 4.0;
    while peak_at(w, 1.0) < DRAM_TEMP_LIMIT.value() && w < 60.0 {
        w += 0.5;
    }
    println!(
        "\nwith high-end air cooling, the DRAM limit ({}) binds at ~{:.1} W of CU power per chiplet",
        DRAM_TEMP_LIMIT.value(),
        w
    );
    println!("(the paper-baseline best-mean configuration uses ~8-11 W per chiplet)");
}

//! Multi-node fault campaign: lose nodes, slow stragglers, and degrade
//! inter-node routes across a 64-node dragonfly cabinet, and watch the
//! fleet degrade gracefully — the fabric reroutes around dead EHPs, the
//! straggler's intra-node degradation report sets its compute slowdown,
//! and every step is cross-checked against the analytic scale-out
//! projection.
//!
//! Run with `cargo run --release --example multinode_campaign`.
//!
//! The rendered report is also written to
//! `artifacts/multinode_campaign.txt`, the golden artifact compared (with
//! per-metric tolerance) by `tests/end_to_end.rs`.

use ena::fabric::{run_multinode_campaign, MultiNodeCampaignSpec};
use ena_testkit::golden::artifacts_dir;

fn main() {
    let spec = MultiNodeCampaignSpec::standard(0xC0FFEE);
    println!("{}", spec.plan);

    match run_multinode_campaign(&spec) {
        Ok(report) => {
            print!("{}", report.render());
            let path = artifacts_dir().join("multinode_campaign.txt");
            match std::fs::write(&path, report.render()) {
                Ok(()) => println!("\ngolden artifact written to {}", path.display()),
                Err(e) => println!("\ncannot write {}: {e}", path.display()),
            }
            println!(
                "same seed, same report: the campaign is deterministic \
                 (seed {:#x})",
                spec.plan.seed
            );
        }
        Err(e) => println!("campaign failed: {e}"),
    }
}

//! Reproduces the paper's Section V/VI design-space exploration: sweep
//! >1000 configurations, find the best-mean point under the 160 W budget,
//! > and print the Table II per-application oracle.
//!
//! The sweep runs through the `ena-sweep` engine — parallel workers plus
//! memoization — which is byte-identical to the sequential `Explorer`
//! oracle, so the result rows are unchanged while the telemetry shows
//! the engine at work. The warm re-sweep at the end demonstrates the
//! cache, and the final section re-runs the winning configuration under
//! a seeded single-chiplet loss (the sweep x fault cross-product).
//!
//! Run with `cargo run --release --example design_space_exploration`.

use ena::core::dse::DesignSpace;
use ena::core::Explorer;
use ena::faults::sweep_degraded;
use ena::sweep::{SweepEngine, SweepSpec};
use ena::workloads::paper_profiles;

fn main() {
    let space = DesignSpace::paper();
    println!(
        "sweeping {} configurations ({} CU counts x {} clocks x {} bandwidths)...",
        space.len(),
        space.cu_counts.len(),
        space.clocks.len(),
        space.bandwidths.len()
    );

    let mut engine = SweepEngine::new(Explorer::default());
    let spec = SweepSpec {
        jobs: 4,
        ..SweepSpec::new(space, paper_profiles())
    };
    let outcome = engine.run(&spec).expect("paper sweep completes");
    let result = &outcome.result;

    println!(
        "feasible under {}: {} of {}",
        engine.explorer().budget,
        result.feasible,
        result.evaluated
    );
    println!("best-mean configuration: {}\n", result.best_mean.label());

    println!(
        "{:<10} {:>22} {:>14}",
        "app", "best config", "benefit vs mean"
    );
    for a in &result.per_app {
        println!(
            "{:<10} {:>22} {:>13.1}%",
            a.app,
            a.point.label(),
            a.benefit_over_mean_pct
        );
    }

    let t = &outcome.telemetry;
    println!(
        "\ntelemetry: {} points on {} jobs in {:.0} ms ({:.0} points/sec, {:.0}% cache hits)",
        t.total_points,
        t.jobs,
        t.elapsed.as_secs_f64() * 1e3,
        t.points_per_sec(),
        100.0 * t.hit_rate(),
    );
    for (i, w) in t.workers.iter().enumerate() {
        println!(
            "  worker {i}: {} chunks, {} points, {} steals",
            w.chunks, w.points, w.steals
        );
    }

    // Sweep again on the warm engine: every point memoized, same bytes.
    let warm = engine.run(&spec).expect("warm sweep completes");
    assert_eq!(warm.result, outcome.result, "memoization must not drift");
    println!(
        "warm re-sweep: {:.0}% cache hits, identical result",
        100.0 * warm.telemetry.hit_rate()
    );

    // Cross-product with the fault engine: what does the winning
    // configuration retain when a GPU chiplet dies mid-run?
    let report = sweep_degraded(result.best_mean, "CoMD", 0xC0FFEE)
        .expect("single-chiplet loss is survivable");
    println!(
        "degraded best-mean ({} under seeded single-chiplet loss): {:.1}% throughput retained",
        result.best_mean.label(),
        100.0 * report.throughput_retained()
    );
}

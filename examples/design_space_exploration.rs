//! Reproduces the paper's Section V/VI design-space exploration: sweep
//! >1000 configurations, find the best-mean point under the 160 W budget,
//! > and print the Table II per-application oracle.
//!
//! Run with `cargo run --release --example design_space_exploration`.

use ena::core::dse::{DesignSpace, Explorer};
use ena::workloads::paper_profiles;

fn main() {
    let space = DesignSpace::paper();
    println!(
        "sweeping {} configurations ({} CU counts x {} clocks x {} bandwidths)...",
        space.len(),
        space.cu_counts.len(),
        space.clocks.len(),
        space.bandwidths.len()
    );

    let explorer = Explorer::default();
    let result = explorer.explore(&space, &paper_profiles());

    println!(
        "feasible under {}: {} of {}",
        explorer.budget, result.feasible, result.evaluated
    );
    println!("best-mean configuration: {}\n", result.best_mean.label());

    println!(
        "{:<10} {:>22} {:>14}",
        "app", "best config", "benefit vs mean"
    );
    for a in &result.per_app {
        println!(
            "{:<10} {:>22} {:>13.1}%",
            a.app,
            a.point.label(),
            a.benefit_over_mean_pct
        );
    }
}

#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (dev- or otherwise), so this must pass with an empty cargo
# registry cache and no network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> example smoke runs"
cargo run --release --example resilient_reconfiguration
cargo run --release --example fault_campaign

echo "==> sweep smoke: cold run, then warm run must hit the cache"
rm -rf artifacts/sweep-cache
cargo run --release -p ena-cli --bin ena -- sweep --jobs 2 --resume >/dev/null
warm_line=$(cargo run --release -p ena-cli --bin ena -- sweep --jobs 2 --resume | grep '^cache:')
echo "warm $warm_line"
hit_rate=$(echo "$warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm sweep hit rate ${hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> multinode smoke: cold sweep, then warm run must hit the cache"
rm -rf artifacts/multinode-cache
cargo run --release -p ena-cli --bin ena -- multinode --nodes 8 --seed 0xC0FFEE >/dev/null
cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume >/dev/null
mn_warm_line=$(cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume | grep '^cache:')
echo "warm $mn_warm_line"
mn_hit_rate=$(echo "$mn_warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$mn_hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm multinode sweep hit rate ${mn_hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> chaos smoke: seeded fault campaign must hold every invariant"
rm -rf artifacts/chaos-cache
chaos_out=$(cargo run --release -p ena-cli --bin ena -- chaos --seed 0xC0FFEE --runs 2 --jobs 2)
echo "$chaos_out" | tail -n 2
if ! echo "$chaos_out" | grep -q 'invariants: all hold'; then
  echo "ci.sh: chaos campaign did not report held invariants" >&2
  exit 1
fi

echo "==> transient smoke: seeded campaign must match the golden report"
transient_out=$(cargo run --release -p ena-cli --bin ena -- faults --seed 0xC0FFEE --transient)
if ! diff <(echo "$transient_out") artifacts/transient_campaign.txt; then
  echo "ci.sh: transient campaign diverged from artifacts/transient_campaign.txt" >&2
  exit 1
fi

echo "==> recovery smoke: cold interval sweep, then warm run must hit the cache"
rm -rf artifacts/recovery-cache
cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume --mtbf 96 --checkpoint-cost 3 >/dev/null
rc_warm_line=$(cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume --mtbf 96 --checkpoint-cost 3 | grep '^cache:')
echo "warm $rc_warm_line"
rc_hit_rate=$(echo "$rc_warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$rc_hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm recovery sweep hit rate ${rc_hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> serve smoke: cold mix, kill -9, warm restart must serve from the store"
rm -rf artifacts/serve-cache artifacts/serve-port
cargo build --release -p ena-cli
ENA=target/release/ena
serve_wait_port() {
  for _ in $(seq 1 100); do
    [ -s artifacts/serve-port ] && return 0
    sleep 0.1
  done
  echo "ci.sh: server never wrote artifacts/serve-port" >&2
  return 1
}
# Server A: cold. The client mix computes the coarse sweep, snapshots,
# then appends one more record past the snapshot.
$ENA serve --port 0 --port-file artifacts/serve-port --cache artifacts/serve-cache >/dev/null &
SERVE_PID=$!
serve_wait_port
$ENA client --port-file artifacts/serve-port \
  --script "SWEEP coarse; SNAPSHOT; EVAL 384 1500 4" >/dev/null
# Unclean death: every acknowledged record must already be durable.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
verify_out=$($ENA cache verify artifacts/serve-cache/campaign-*.sweep)
echo "$verify_out"
if ! echo "$verify_out" | grep -q 'torn_tail: false'; then
  echo "ci.sh: serve cache failed verify" >&2
  exit 1
fi
# Server B: warm restart on the survivor. The same mix must be ~all hits.
rm -f artifacts/serve-port
$ENA serve --port 0 --port-file artifacts/serve-port --cache artifacts/serve-cache >/dev/null &
SERVE_PID=$!
serve_wait_port
serve_out=$($ENA client --port-file artifacts/serve-port \
  --script "SWEEP coarse; EVAL 384 1500 4; STATS; SHUTDOWN")
wait "$SERVE_PID"
serve_line=$(echo "$serve_out" | grep '^cache: lookups=')
echo "warm $serve_line"
echo "$serve_line" | awk '{
  for (i = 1; i <= NF; i++) {
    split($i, kv, "=")
    if (kv[1] == "lookups") lookups = kv[2] + 0
    if (kv[1] == "hits") hits = kv[2] + 0
    if (kv[1] == "evals") evals = kv[2] + 0
    if (kv[1] == "waits") waits = kv[2] + 0
    if (kv[1] == "hit_rate") { sub(/%/, "", kv[2]); rate = kv[2] + 0 }
  }
  if (lookups != hits + evals + waits) {
    printf "ci.sh: serve accounting broken: %d != %d+%d+%d\n", lookups, hits, evals, waits > "/dev/stderr"
    exit 1
  }
  if (rate < 90.0) {
    printf "ci.sh: warm serve hit rate %s%% is below 90%%\n", rate > "/dev/stderr"
    exit 1
  }
}'

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ena-lint (determinism, robustness & concurrency static analysis)"
cargo run -q -p ena-lint -- --deny-warnings --emit-lock-graph artifacts/lock_graph.txt
cargo run -q -p ena-lint -- --deny-warnings --json > artifacts/lint.json
echo "wrote artifacts/lock_graph.txt and artifacts/lint.json"

echo "ci.sh: all checks passed"

#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (dev- or otherwise), so this must pass with an empty cargo
# registry cache and no network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> example smoke runs"
cargo run --release --example resilient_reconfiguration
cargo run --release --example fault_campaign

echo "==> sweep smoke: cold run, then warm run must hit the cache"
rm -rf artifacts/sweep-cache
cargo run --release -p ena-cli --bin ena -- sweep --jobs 2 --resume >/dev/null
warm_line=$(cargo run --release -p ena-cli --bin ena -- sweep --jobs 2 --resume | grep '^cache:')
echo "warm $warm_line"
hit_rate=$(echo "$warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm sweep hit rate ${hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> multinode smoke: cold sweep, then warm run must hit the cache"
rm -rf artifacts/multinode-cache
cargo run --release -p ena-cli --bin ena -- multinode --nodes 8 --seed 0xC0FFEE >/dev/null
cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume >/dev/null
mn_warm_line=$(cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume | grep '^cache:')
echo "warm $mn_warm_line"
mn_hit_rate=$(echo "$mn_warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$mn_hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm multinode sweep hit rate ${mn_hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> chaos smoke: seeded fault campaign must hold every invariant"
rm -rf artifacts/chaos-cache
chaos_out=$(cargo run --release -p ena-cli --bin ena -- chaos --seed 0xC0FFEE --runs 2 --jobs 2)
echo "$chaos_out" | tail -n 2
if ! echo "$chaos_out" | grep -q 'invariants: all hold'; then
  echo "ci.sh: chaos campaign did not report held invariants" >&2
  exit 1
fi

echo "==> transient smoke: seeded campaign must match the golden report"
transient_out=$(cargo run --release -p ena-cli --bin ena -- faults --seed 0xC0FFEE --transient)
if ! diff <(echo "$transient_out") artifacts/transient_campaign.txt; then
  echo "ci.sh: transient campaign diverged from artifacts/transient_campaign.txt" >&2
  exit 1
fi

echo "==> recovery smoke: cold interval sweep, then warm run must hit the cache"
rm -rf artifacts/recovery-cache
cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume --mtbf 96 --checkpoint-cost 3 >/dev/null
rc_warm_line=$(cargo run --release -p ena-cli --bin ena -- multinode --sweep --jobs 2 --resume --mtbf 96 --checkpoint-cost 3 | grep '^cache:')
echo "warm $rc_warm_line"
rc_hit_rate=$(echo "$rc_warm_line" | sed -n 's/.*(\([0-9.]*\)% hit rate).*/\1/p')
if ! awk -v r="$rc_hit_rate" 'BEGIN { exit !(r >= 90.0) }'; then
  echo "ci.sh: warm recovery sweep hit rate ${rc_hit_rate}% is below 90%" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ena-lint (determinism & robustness static analysis)"
cargo run -q -p ena-lint -- --deny-warnings

echo "ci.sh: all checks passed"

#!/usr/bin/env bash
# Tier-1 verification, fully offline: the workspace has no external
# dependencies (dev- or otherwise), so this must pass with an empty cargo
# registry cache and no network.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> example smoke runs"
cargo run --release --example resilient_reconfiguration
cargo run --release --example fault_campaign

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all checks passed"

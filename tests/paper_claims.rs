//! Integration tests for the paper's headline quantitative claims,
//! exercised end-to-end across the workspace crates.

use ena::core::dse::{DesignSpace, Explorer};
use ena::core::node::{EvalOptions, NodeSimulator};
use ena::core::system::{project_paper_system, ExascaleTargets};
use ena::model::config::EhpConfig;
use ena::model::units::{GigabytesPerSec, Megahertz};
use ena::power::opts::PowerOptimization;
use ena::workloads::{paper_profiles, profile_for};

/// Section V-F: 320 CUs at 1 GHz reach ~18.6 TF/node, 1.86 EF system-wide,
/// at ~11 MW — comfortably inside the 20 MW envelope.
#[test]
fn exascale_target_is_met() {
    let config = EhpConfig::builder()
        .total_cus(320)
        .gpu_clock(Megahertz::new(1000.0))
        .hbm_bandwidth(GigabytesPerSec::from_terabytes_per_sec(1.0))
        .build()
        .unwrap();
    let projection = project_paper_system(
        &NodeSimulator::new(),
        &config,
        &profile_for("MaxFlops").unwrap(),
        &EvalOptions::with_miss_fraction(0.0),
    );
    assert!(projection.meets(&ExascaleTargets::default()), "{projection:?}");
    assert!(
        (16.0..21.0).contains(&projection.node_teraflops),
        "node TF = {}",
        projection.node_teraflops
    );
}

/// Section V: the best-mean configuration exists in the paper's
/// neighborhood and every workload fits the 160 W package budget there.
#[test]
fn best_mean_configuration_is_feasible_for_the_whole_suite() {
    let explorer = Explorer::default();
    let result = explorer.explore(&DesignSpace::coarse(), &paper_profiles());
    let config = result.best_mean.to_config();
    let sim = NodeSimulator::new();
    for p in paper_profiles() {
        let eval = sim.evaluate(&config, &p, &explorer.options);
        assert!(
            eval.package_power().value() <= 160.0,
            "{} busts the budget at the best-mean point",
            p.name
        );
    }
}

/// Section V-A: chiplet organization costs at most ~13 % performance
/// despite 60-95 % out-of-chiplet traffic.
#[test]
fn chiplet_overhead_is_small() {
    let config = EhpConfig::paper_baseline();
    for p in paper_profiles() {
        let study = ena::core::chiplet::chiplet_study(&config, &p, 2000, 7);
        assert!(
            study.perf_relative_to_monolithic >= 0.85,
            "{}: {:.3}",
            p.name,
            study.perf_relative_to_monolithic
        );
    }
}

/// Section V-E: all optimizations together save 13-27 % of node power, and
/// the optimized machine is strictly more efficient on every workload.
#[test]
fn power_optimizations_meet_the_savings_band() {
    let sim = NodeSimulator::new();
    let config = EhpConfig::paper_baseline();
    for p in paper_profiles() {
        let plain = sim
            .evaluate(&config, &p, &EvalOptions::with_miss_fraction(0.15))
            .node_power()
            .value();
        let mut options = EvalOptions::with_miss_fraction(0.15);
        options.optimizations = PowerOptimization::ALL.to_vec();
        let optimized = sim.evaluate(&config, &p, &options).node_power().value();
        let saved = 100.0 * (1.0 - optimized / plain);
        assert!((8.0..30.0).contains(&saved), "{}: saved {saved:.1}%", p.name);
    }
}

/// Section V-D: at the baseline, every workload's in-package DRAM stays
/// below the 85 degC refresh limit with air cooling.
#[test]
fn thermals_are_feasible_across_the_suite() {
    let sim = NodeSimulator::new();
    let config = EhpConfig::paper_baseline();
    for p in paper_profiles() {
        let eval = sim.evaluate(&config, &p, &EvalOptions::default());
        let t = sim.thermal(&config, &eval).unwrap();
        assert!(t.dram_within_limit(), "{}: {:.1}", p.name, t.peak_dram().value());
    }
}

/// The node provides >= 1 TB of memory with >= 3 TB/s of in-package
/// bandwidth (exascale node targets from the introduction).
#[test]
fn node_memory_targets_are_met() {
    let config = EhpConfig::paper_baseline();
    assert!(config.total_memory_capacity().value() >= 1000.0);
    assert!(config.hbm.total_bandwidth().terabytes_per_sec() >= 3.0);
    assert_eq!(config.hbm.total_capacity().value(), 256.0);
}

//! Integration tests across the substrate crates: the GPU timing model,
//! the HSA runtime, and the CPU models working together with the workload
//! suite and the analytic node model.

use ena::cpu::core::CoreModel;
use ena::cpu::program::CpuProgram;
use ena::gpu::backend::HbmBackend;
use ena::gpu::sim::{CuConfig, GpuSim};
use ena::gpu::synth::wavefronts_for;
use ena::hsa::runtime::{Runtime, RuntimeConfig};
use ena::hsa::task::{TaskCost, TaskGraph};
use ena::model::units::{Megahertz, Seconds};
use ena::workloads::{paper_profiles, profile_for};

/// Profile-synthesized wavefronts on the banked-HBM backend show the same
/// compute-vs-memory split the analytic categories claim.
#[test]
fn timing_sim_on_real_hbm_matches_categories() {
    let run = |name: &str| {
        let profile = profile_for(name).unwrap();
        let wavefronts = wavefronts_for(&profile, 16, 5);
        let mut backend = HbmBackend::new(8);
        let stats = GpuSim::new(CuConfig::default(), &mut backend).run(wavefronts);
        stats.flops_per_cycle() / 64.0
    };
    let maxflops = run("MaxFlops");
    let comd = run("CoMD");
    let xsbench = run("XSBench");
    assert!(maxflops > 0.8, "MaxFlops eff {maxflops}");
    assert!(comd < maxflops + 1e-9);
    assert!(
        xsbench < 0.5 * maxflops,
        "XSBench {xsbench} vs MaxFlops {maxflops}"
    );
}

/// An end-to-end heterogeneous pipeline: CPU serial stage timed by the
/// leading-loads model feeds a GPU stage scheduled by the HSA runtime.
#[test]
fn cpu_model_feeds_the_hsa_runtime() {
    // Time the serial stage with the CPU model.
    let core = CoreModel::default();
    let serial = CpuProgram::synthesize(2_000_000, 5.0, 2);
    let serial_us = core.run(&serial, Megahertz::new(2500.0)).time.value() * 1e6;
    assert!(serial_us > 100.0);

    // Build a DAG: that serial stage, then a fan of GPU kernels.
    let mut g = TaskGraph::new();
    let pre = g.add("serial", TaskCost::cpu(serial_us), &[]).unwrap();
    let kernels: Vec<_> = (0..16)
        .map(|i| {
            g.add(format!("k{i}"), TaskCost::gpu(300.0), &[pre])
                .unwrap()
        })
        .collect();
    g.add("post", TaskCost::cpu(50.0), &kernels).unwrap();

    let schedule = Runtime::new(RuntimeConfig::hsa()).execute(&g);
    // The serial stage dominates; the GPU fan adds ~2 rounds over 8 queues.
    assert!(schedule.makespan_us > serial_us);
    assert!(
        schedule.makespan_us < serial_us + 1000.0,
        "makespan {} vs serial {serial_us}",
        schedule.makespan_us
    );
}

/// The CLI wraps the same models: its suite report agrees with direct
/// evaluation.
#[test]
fn cli_agrees_with_the_library() {
    let out = ena_cli::execute(ena_cli::parse(vec!["suite".into()]).unwrap()).unwrap();
    let sim = ena::core::node::NodeSimulator::new();
    let config = ena::model::config::EhpConfig::paper_baseline();
    for profile in paper_profiles() {
        let eval = sim.evaluate(&config, &profile, &ena::core::node::EvalOptions::default());
        let tf = format!("{:.2}", eval.perf.throughput.teraflops());
        assert!(
            out.contains(&tf),
            "CLI output missing {} = {tf} TF:\n{out}",
            profile.name
        );
    }
}

/// Serial fractions measured by the CPU model stay consistent under DVFS:
/// the same program, predicted vs re-run, across the whole P-state table.
#[test]
fn dvfs_predictions_hold_across_the_table() {
    let core = CoreModel::default();
    for mpki in [0.0, 8.0, 30.0] {
        let p = CpuProgram::synthesize(500_000, mpki, 4);
        let measured = core.run(&p, Megahertz::new(3200.0));
        for mhz in [1200.0, 1800.0, 2500.0] {
            let predicted =
                core.predict_time(&measured, Megahertz::new(3200.0), Megahertz::new(mhz));
            let actual = core.run(&p, Megahertz::new(mhz)).time;
            assert!((predicted.value() - actual.value()).abs() < 1e-12);
        }
    }
    // And latency re-prediction is self-consistent.
    let p = CpuProgram::synthesize(100_000, 10.0, 2);
    let m = core.run(&p, Megahertz::new(2500.0));
    let same = core.predict_with_latency(&m, Seconds::new(80e-9));
    assert!((same.value() - m.time.value()).abs() < 1e-12);
}

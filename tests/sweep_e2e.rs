//! End-to-end acceptance for the `ena-sweep` engine (ISSUE 4).
//!
//! A parallel sweep (`jobs > 1`) of the full paper design space must
//! reproduce the sequential `Explorer` oracle byte-for-byte — best-mean
//! point, feasible count, and the Table II per-application oracle — and
//! a cold/warm disk-cache pair must show a nonzero hit rate on the warm
//! run while returning identical results.

use std::path::PathBuf;

use ena::core::dse::DesignSpace;
use ena::core::Explorer;
use ena::sweep::{CacheMode, SweepEngine, SweepSpec};
use ena::workloads::paper_profiles;

/// Byte-level view of a value: `{:?}` on `f64` prints the shortest
/// decimal that round-trips, so distinct bit patterns render distinctly.
fn render<T: std::fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    dir
}

#[test]
fn parallel_paper_sweep_matches_the_sequential_oracle_byte_for_byte() {
    let profiles = paper_profiles();
    let explorer = Explorer::default();
    let oracle = explorer
        .explore(&DesignSpace::paper(), &profiles)
        .expect("paper space explores");

    let mut engine = SweepEngine::new(Explorer::default());
    let spec = SweepSpec {
        jobs: 3,
        ..SweepSpec::new(DesignSpace::paper(), profiles)
    };
    let outcome = engine.run(&spec).expect("paper sweep completes");

    assert_eq!(outcome.result.feasible, oracle.feasible);
    assert_eq!(outcome.result.evaluated, oracle.evaluated);
    assert_eq!(
        render(&outcome.result.best_mean),
        render(&oracle.best_mean),
        "best-mean point must be byte-identical"
    );
    assert_eq!(
        render(&outcome.result.per_app),
        render(&oracle.per_app),
        "Table II per-app oracle must be byte-identical"
    );
    assert_eq!(
        render(&outcome.result),
        render(&oracle),
        "the whole result must be byte-identical"
    );
}

#[test]
fn cold_then_warm_disk_sweep_hits_the_cache_and_returns_identical_results() {
    let dir = scratch("sweep-e2e-cache");
    let spec = SweepSpec {
        jobs: 2,
        cache: CacheMode::Disk(dir),
        ..SweepSpec::new(DesignSpace::paper(), paper_profiles())
    };

    let mut cold_engine = SweepEngine::new(Explorer::default());
    let cold = cold_engine.run(&spec).expect("cold sweep completes");
    assert_eq!(cold.telemetry.cache_hits, 0, "cold run starts empty");

    // A fresh engine sees only the disk layer — no in-memory carryover.
    let mut warm_engine = SweepEngine::new(Explorer::default());
    let warm = warm_engine.run(&spec).expect("warm sweep completes");

    assert!(
        warm.telemetry.hit_rate() > 0.0,
        "warm run must hit the disk cache (got {} hits)",
        warm.telemetry.cache_hits
    );
    assert_eq!(
        warm.telemetry.cache_hits, warm.telemetry.total_points,
        "every point of the warm run should come from the cache"
    );
    assert_eq!(render(&warm.result), render(&cold.result));
    assert_eq!(render(&warm.frontier), render(&cold.frontier));
}

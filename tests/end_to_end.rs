//! Cross-crate integration: real workload traces driven through the
//! trace-level substrates (NoC, memory system), and consistency between
//! the analytic and trace-driven views.

use ena::memory::policy::SoftwareManaged;
use ena::memory::system::MemorySystem;
use ena::model::config::EhpConfig;
use ena::noc::sim::NocSim;
use ena::noc::topology::Topology;
use ena::noc::traffic::trace_packets;
use ena::workloads::app::{ProxyApp, RunConfig};
use ena::workloads::apps::{all_apps, Snap, XsBench};
use ena::workloads::trace::AccessKind;

/// A recorded XSBench trace replayed through the chiplet NoC reaches all
/// stacks and shows the interleaving-induced remote-traffic fraction.
#[test]
fn trace_replay_through_the_noc() {
    let run = XsBench.run(&RunConfig::small());
    let topo = Topology::ehp(8, 8);
    let addresses: Vec<u64> = run
        .trace
        .accesses()
        .iter()
        .take(5000)
        .map(|a| a.addr)
        .collect();
    let packets = trace_packets(&topo, 0, addresses, 4, 4096).expect("healthy topology routes");
    let stats = NocSim::new(&topo).run(&packets);
    assert_eq!(stats.delivered, 10_000); // request + response per access
                                         // Uniform page interleave from one chiplet: ~7/8 remote.
    let remote = stats.out_of_chiplet_fraction();
    assert!((0.8..0.95).contains(&remote), "remote = {remote}");
    assert!(stats.avg_latency_cycles() > 0.0);
}

/// A recorded trace replayed through the full multi-level memory system
/// under software management services most accesses in-package once the
/// hot set migrates.
#[test]
fn trace_replay_through_the_memory_system() {
    let run = Snap.run(&RunConfig::small());
    let accesses: Vec<(u64, bool)> = run
        .trace
        .accesses()
        .iter()
        .map(|a| (a.addr, a.kind == AccessKind::Write))
        .collect();
    // Capacity sized to half the footprint: the policy must choose.
    let capacity = run.trace.footprint_bytes() / 2;
    let mut system = MemorySystem::new(
        &EhpConfig::paper_baseline(),
        Box::new(SoftwareManaged::new(capacity)),
        2000,
    );
    let stats = system.replay(accesses);
    assert!(stats.accesses > 1000);
    assert!(
        stats.in_package_fraction() > 0.3,
        "in-package = {}",
        stats.in_package_fraction()
    );
    assert!(stats.energy.value() > 0.0);
    // The external tier was exercised too.
    assert!(system.external_stats().accesses > 0);
}

/// The measured intensity ordering of the mini-kernels agrees with the
/// calibrated profiles' categories: every memory-intensive profile measures
/// a lower trace-level flop/byte than every balanced profile.
#[test]
fn measured_and_calibrated_views_agree() {
    use ena::model::KernelCategory;
    let cfg = RunConfig::small();
    let mut balanced_min = f64::MAX;
    let mut memory_max = f64::MIN;
    for app in all_apps() {
        let run = app.run(&cfg);
        let opb = run.counters.dp_flops as f64 / run.trace.total_bytes() as f64;
        match app.category() {
            KernelCategory::Balanced => balanced_min = balanced_min.min(opb),
            KernelCategory::MemoryIntensive => memory_max = memory_max.max(opb),
            KernelCategory::ComputeIntensive => assert!(opb > 100.0, "{}", app.name()),
        }
    }
    assert!(
        balanced_min > memory_max,
        "balanced min {balanced_min} <= memory max {memory_max}"
    );
}

/// Every experiment of the `figures` harness runs and produces output.
#[test]
fn all_figures_regenerate() {
    for name in ena_bench::experiments::ALL_EXPERIMENTS {
        let out = ena_bench::experiments::run(name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(out.len() > 100, "{name} output suspiciously short");
    }
}

/// Same seed, same bytes: the full end-to-end pipeline — PRNG-driven
/// trace generation, NoC replay, memory-system replay, and the analytic
/// node evaluation — produces byte-identical results across two
/// independent runs.
#[test]
fn same_seed_runs_are_byte_identical() {
    let run_once = || {
        let cfg = RunConfig::small();
        let run = XsBench.run(&cfg);

        let topo = Topology::ehp(8, 8);
        let addresses: Vec<u64> = run
            .trace
            .accesses()
            .iter()
            .take(2000)
            .map(|a| a.addr)
            .collect();
        let noc_stats = NocSim::new(&topo)
            .run(&trace_packets(&topo, 0, addresses, 4, 4096).expect("healthy topology routes"));

        let accesses: Vec<(u64, bool)> = run
            .trace
            .accesses()
            .iter()
            .map(|a| (a.addr, a.kind == AccessKind::Write))
            .collect();
        let mut system = MemorySystem::new(
            &EhpConfig::paper_baseline(),
            Box::new(SoftwareManaged::new(run.trace.footprint_bytes() / 2)),
            2000,
        );
        let mem_stats = system.replay(accesses);

        let sim = ena::core::node::NodeSimulator::new();
        let eval = sim.evaluate(
            &EhpConfig::paper_baseline(),
            &ena::workloads::profile_for("XSBench").unwrap(),
            &ena::core::node::EvalOptions::default(),
        );

        // Render everything observable, floats via exact bit patterns, so
        // the comparison is byte-level rather than approximate.
        format!(
            "{:?}|{:?}|{:?}|{:x}|{:x}",
            run.trace.accesses(),
            noc_stats,
            mem_stats,
            eval.perf.throughput.value().to_bits(),
            eval.node_power().value().to_bits(),
        )
    };
    assert_eq!(run_once(), run_once());
}

/// Everything in the stack is deterministic: two full evaluations agree
/// bit-for-bit.
#[test]
fn the_stack_is_deterministic() {
    let sim = ena::core::node::NodeSimulator::new();
    let config = EhpConfig::paper_baseline();
    let options = ena::core::node::EvalOptions::default();
    for p in ena::workloads::paper_profiles() {
        let a = sim.evaluate(&config, &p, &options);
        let b = sim.evaluate(&config, &p, &options);
        assert_eq!(
            a.perf.throughput.value().to_bits(),
            b.perf.throughput.value().to_bits()
        );
        assert_eq!(
            a.node_power().value().to_bits(),
            b.node_power().value().to_bits()
        );
    }
}

/// The acceptance fault campaign — one GPU chiplet, one HBM stack, two
/// interposer links, all seeded — completes without panicking, reroutes
/// the surviving traffic, re-queues the orphaned tasks, and lands on a
/// degraded operating point strictly between dead and healthy.
#[test]
fn fault_campaign_degrades_gracefully() {
    use ena::faults::{run_campaign, CampaignSpec};

    let report = run_campaign(&CampaignSpec::standard(0xC0FFEE)).expect("survivable campaign");
    let last = report.final_snapshot();

    // Strictly degraded, strictly alive.
    assert!(last.gflops > 0.0 && last.gflops < report.healthy.gflops);
    assert!(last.node_watts > 0.0 && last.node_watts < report.healthy.node_watts);
    assert!(last.gpu_chiplets >= 1 && last.gpu_chiplets < 8);
    assert!(last.hbm_stacks >= 1 && last.hbm_stacks < 8);

    // Severed packets are accounted, everything else still routes.
    assert!(last.noc_delivered > 0);
    assert_eq!(
        report.healthy.noc_delivered,
        last.noc_delivered + last.noc_dropped
    );

    // The runtime absorbed the agent deaths without losing tasks.
    assert!(report.degraded_makespan_us >= report.healthy_makespan_us);

    // Both availability estimators stay sane on the degraded hardware.
    for est in [&report.healthy_availability, &report.degraded_availability] {
        assert!(est.analytic > 0.0 && est.analytic < 1.0);
        assert!(est.injected > 0.0 && est.injected < 1.0);
        assert!(est.gap() < 0.06, "estimators disagree: {est:?}");
    }
}

/// Same fault plan, same seed: two independent campaign runs render
/// byte-identical degradation reports.
#[test]
fn fault_campaign_reports_are_byte_identical() {
    use ena::faults::{run_campaign, CampaignSpec};

    let render = || {
        run_campaign(&CampaignSpec::standard(0xC0FFEE))
            .expect("survivable campaign")
            .render()
    };
    assert_eq!(render(), render());
}

/// The standard campaign's rendered report matches the golden artifact.
/// The report is deterministic, but its numbers flow through the analytic
/// perf/power/thermal models and the Monte Carlo availability campaign,
/// all of which are legitimate targets for recalibration; 5 % relative
/// slack absorbs model tuning without masking structural regressions
/// (label, line, and count changes are always exact).
#[test]
fn fault_campaign_matches_golden() {
    use ena::faults::{run_campaign, CampaignSpec};
    use ena_testkit::golden::{assert_matches, Tolerance};

    let report = run_campaign(&CampaignSpec::standard(0xC0FFEE)).expect("survivable campaign");
    assert_matches(
        "fault_campaign",
        &report.render(),
        Tolerance::relative(0.05),
    );
}

/// The standard 64-node multi-node campaign's report matches the golden
/// artifact written by `examples/multinode_campaign.rs`. Same slack
/// rationale as the intra-node golden: the numbers flow through the node
/// models and are recalibration targets, the structure is not.
#[test]
fn multinode_campaign_matches_golden() {
    use ena::fabric::{run_multinode_campaign, MultiNodeCampaignSpec};
    use ena_testkit::golden::{assert_matches, Tolerance};

    let report = run_multinode_campaign(&MultiNodeCampaignSpec::standard(0xC0FFEE))
        .expect("survivable fleet");
    assert_matches(
        "multinode_campaign",
        &report.render(),
        Tolerance::relative(0.05),
    );
}

/// The standard transient-fault campaign matches the golden artifact
/// written by `examples/transient_campaign.rs`. Same slack rationale as
/// the other campaign goldens: counts and labels exact, latencies and
/// efficiency within recalibration tolerance.
#[test]
fn transient_campaign_matches_golden() {
    use ena::faults::{run_transient_campaign, TransientCampaignSpec};
    use ena_testkit::golden::{assert_matches, Tolerance};

    let report = run_transient_campaign(&TransientCampaignSpec::standard(0xC0FFEE));
    assert_matches(
        "transient_campaign",
        &report.render(),
        Tolerance::relative(0.05),
    );
}

/// Same seed, same schedule: two independent transient campaigns render
/// byte-identical reports, and the schedule digest embedded in the
/// report pins the sampled event stream itself.
#[test]
fn transient_campaign_reports_are_byte_identical() {
    use ena::faults::{run_transient_campaign, TransientCampaignSpec};

    let render = || run_transient_campaign(&TransientCampaignSpec::standard(0xC0FFEE)).render();
    let first = render();
    assert_eq!(first, render());
    assert!(first.contains("schedule digest"), "{first}");
}

/// Acceptance criterion: the analytic Young/Daly prediction agrees with
/// the simulated checkpoint/restart campaign within the stated tolerance
/// at N in {2, 4, 8} — both on explicit CLI-style parameters and on a
/// node MTBF derived from the resilience model.
#[test]
fn daly_prediction_matches_simulation_at_small_fleets() {
    use ena::fabric::{RecoveryModel, DALY_TOLERANCE};
    use ena::model::config::EhpConfig;

    let explicit = RecoveryModel::new(96.0, 3.0);
    let derived = RecoveryModel::from_node_assessment(&EhpConfig::paper_baseline(), "CoMD", 3.0)
        .expect("CoMD is in the suite");
    for model in [explicit, derived] {
        for nodes in [2u32, 4, 8] {
            let est = model.assess(nodes, 0xC0FFEE);
            assert!(
                est.gap() < DALY_TOLERANCE,
                "{model}, N={nodes}: analytic {:.4} vs simulated {:.4}",
                est.analytic,
                est.simulated
            );
        }
    }
}

/// Same seed, same fleet: two independent multi-node campaign runs
/// render byte-identical reports (including the straggler's embedded
/// intra-node degradation report).
#[test]
fn multinode_campaign_reports_are_byte_identical() {
    use ena::fabric::{run_multinode_campaign, MultiNodeCampaignSpec};

    let render = || {
        run_multinode_campaign(&MultiNodeCampaignSpec::standard(0xC0FFEE))
            .expect("survivable fleet")
            .render()
    };
    assert_eq!(render(), render());
}

/// Consistency between the analytic and simulated scale-out views: at
/// small node counts the simulated fabric estimate is exactly the
/// analytic projection derated by the measured communication efficiency
/// (bitwise — both sides compute the same floating-point expression),
/// and the raw gap to the undereated linear projection stays within the
/// documented small-N tolerance on every shipped topology.
#[test]
fn analytic_and_simulated_scale_out_agree_at_small_n() {
    use ena::core::node::{EvalOptions, NodeSimulator};
    use ena::core::system::project_system;
    use ena::fabric::{estimate, FabricGraph, FabricKind, ScaleOutSpec, SMALL_N_TOLERANCE};
    use ena::workloads::profile_for;
    use std::collections::BTreeMap;

    let spec = ScaleOutSpec::standard("CoMD");
    let profile = profile_for("CoMD").expect("CoMD is in the suite");
    let sim = NodeSimulator::new();
    for kind in FabricKind::ALL {
        for nodes in [2u32, 4, 8] {
            let graph = FabricGraph::build(kind, nodes).expect("buildable fabric");
            let est = estimate(&graph, &spec, &BTreeMap::new()).expect("healthy estimate");
            let projection = project_system(
                &sim,
                &spec.base,
                &profile,
                &EvalOptions::default(),
                u64::from(nodes),
            );
            assert_eq!(
                est.exaflops,
                projection.derated(est.efficiency).exaflops,
                "{kind} x{nodes}: derated projection must match bitwise"
            );
            let gap = est.analytic_gap(&projection);
            assert!(
                gap < SMALL_N_TOLERANCE,
                "{kind} x{nodes}: analytic gap {gap} exceeds {SMALL_N_TOLERANCE}"
            );
        }
    }
}

//! End-to-end acceptance for `ena-serve` (ISSUE 9), over real TCP.
//!
//! Three contracts:
//! 1. Server responses are byte-identical to what the batch path
//!    (`Explorer::evaluate_point` under the sweep engine's keys)
//!    computes for the same design points.
//! 2. Durability holds without a `SNAPSHOT`: every acknowledged record
//!    is on disk at append time, the surviving cache file verifies
//!    clean, and a restarted server answers every acked point from
//!    memory.
//! 3. The server's cache file is the sweep engine's own v2 format —
//!    `verify_file` accepts it under the shared campaign digest.

use std::net::TcpListener;
use std::path::PathBuf;

use ena::core::dse::Explorer;
use ena::core::dse::PointRecord;
use ena::serve::{Client, EvalPoint, ServeConfig, Server};
use ena::sweep::{campaign_digest, point_key, verify_file, CacheRecord, DiskCache, SyncPolicy};
use ena::workloads::paper_profiles;

fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clean scratch dir");
    }
    dir
}

/// Sample design points spanning the coarse grid's corners.
fn sample_points() -> Vec<EvalPoint> {
    vec![
        EvalPoint {
            cus: 192,
            mhz: 600.0,
            tbps: 1.0,
        },
        EvalPoint {
            cus: 320,
            mhz: 1000.0,
            tbps: 3.0,
        },
        EvalPoint {
            cus: 384,
            mhz: 1500.0,
            tbps: 4.0,
        },
    ]
}

/// Runs `session` against a served TCP socket, returning its result
/// after a clean `SHUTDOWN` drains the server.
fn with_tcp_server<T: Send>(
    config: ServeConfig,
    session: impl FnOnce(&mut Client<std::net::TcpStream>) -> T + Send,
) -> (T, String) {
    let (server, _) = Server::new(config).expect("server opens");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("local addr");
    std::thread::scope(|s| {
        let server = &server;
        let serve = s.spawn(move || server.serve(listener).expect("serve returns stats"));
        let out = {
            let mut client = Client::connect(&addr.to_string()).expect("connect");
            let out = session(&mut client);
            let bye = client.request("SHUTDOWN").expect("shutdown ack");
            assert_eq!(bye, "OK bye");
            out
        };
        let stats = serve.join().expect("serve thread");
        (out, stats)
    })
}

#[test]
fn tcp_responses_are_byte_identical_to_the_batch_path() {
    let profiles = paper_profiles();
    let explorer = Explorer::default();
    let campaign = campaign_digest(&explorer, &profiles);

    let points = sample_points();
    let lines: Vec<String> = points
        .iter()
        .map(|p| format!("EVAL {} {} {}", p.cus, p.mhz, p.tbps))
        .collect();
    let lines: Vec<&str> = lines.iter().map(String::as_str).collect();

    let config = ServeConfig::new(explorer.clone(), profiles.clone());
    let (responses, stats) =
        with_tcp_server(config, |client| client.pipeline(&lines).expect("responses"));

    for (point, response) in points.iter().zip(&responses) {
        let config_point = point.to_config_point();
        let key = point_key(campaign, &config_point);
        let record = explorer.evaluate_point(config_point, &profiles);
        let expected = format!("OK {key:016x} {}", record.encode());
        assert_eq!(
            response, &expected,
            "served bytes diverge from the batch path for {point:?}"
        );
    }
    assert!(stats.contains("shutdown=1"), "{stats}");
}

#[test]
fn restart_without_snapshot_loses_no_acknowledged_record() {
    let dir = scratch("serve-unclean-death");
    let profiles = paper_profiles();
    let explorer = Explorer::default();
    let campaign = campaign_digest(&explorer, &profiles);

    let points = sample_points();
    let lines: Vec<String> = points
        .iter()
        .map(|p| format!("EVAL {} {} {}", p.cus, p.mhz, p.tbps))
        .collect();
    let lines: Vec<&str> = lines.iter().map(String::as_str).collect();

    let mut config = ServeConfig::new(explorer.clone(), profiles.clone());
    config.cache_dir = Some(dir.clone());
    config.sync = SyncPolicy::Flush;
    let (acked, _) = with_tcp_server(config.clone(), |client| {
        client.pipeline(&lines).expect("responses")
    });
    for r in &acked {
        assert!(r.starts_with("OK "), "{r}");
    }
    // The server is gone and never snapshotted. Every acked record
    // must already be on disk from its publish-time append.
    let cache_path = dir.join(DiskCache::<PointRecord>::file_name(campaign));
    let model = ena::model::hash::MODEL_VERSION;
    let report =
        verify_file::<PointRecord>(&cache_path, campaign, model).expect("cache verifies clean");
    assert!(!report.torn_tail, "acked-only writes can never tear");
    let expected_keys: std::collections::BTreeSet<u64> = points
        .iter()
        .map(|p| point_key(campaign, &p.to_config_point()))
        .collect();
    let on_disk: std::collections::BTreeSet<u64> = report.keys.iter().copied().collect();
    assert_eq!(on_disk, expected_keys, "acknowledged record lost");

    // A restarted server warm-starts and answers from memory.
    let (warm, restored) = Server::new(config).expect("warm open");
    assert_eq!(restored, points.len());
    drop(warm);

    let mut config = ServeConfig::new(explorer, profiles);
    config.cache_dir = Some(dir);
    config.sync = SyncPolicy::Flush;
    let (responses, stats) = with_tcp_server(config, |client| {
        client.pipeline(&lines).expect("warm responses")
    });
    assert_eq!(responses, acked, "restart changed acknowledged bytes");
    assert!(
        stats.contains("hit_rate=100.0%"),
        "warm server must serve entirely from the restored store:\n{stats}"
    );
}

#[test]
fn snapshot_compacts_while_serving_over_tcp() {
    let dir = scratch("serve-snapshot-tcp");
    let profiles = paper_profiles();
    let mut config = ServeConfig::new(Explorer::default(), profiles);
    config.cache_dir = Some(dir);
    config.sync = SyncPolicy::Flush;
    let (out, _) = with_tcp_server(config, |client| {
        let first = client.request("EVAL 320 1000 3").expect("eval");
        assert!(first.starts_with("OK "), "{first}");
        let snap = client.request("SNAPSHOT").expect("snapshot");
        assert_eq!(snap, "OK snapshot records=1 generation=1");
        // The server keeps serving after the atomic rewrite, and the
        // record is still hot.
        let again = client.request("EVAL 320 1000 3").expect("eval again");
        assert_eq!(again, first);
        let stats = client.request("STATS").expect("stats");
        stats
    });
    assert!(out.contains("snapshot=1"), "{out}");
    assert!(out.contains("hits=1"), "{out}");
}
